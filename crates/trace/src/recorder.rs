//! The interposition wrapper and trace collection.

use crate::event::{EventKind, ProcessTrace, Trace, TraceEvent};
use bytes::Bytes;
use parking_lot::Mutex;
use pas2p_machine::Work;
use pas2p_mpisim::{Counters, Group, Message, Mpi, ReduceOp, Tag};

/// Cost model of the instrumentation itself.
///
/// Every intercepted event costs a little CPU time (buffering the record,
/// reading the clock). The paper's Table 9 measures the resulting
/// AET_PAS2P > AET; LU, with the most communication events, shows the
/// largest slowdown. The default of 3 µs per event is typical of
/// lightweight PMPI tracers.
#[derive(Debug, Clone, Copy)]
pub struct InstrumentationModel {
    /// Virtual seconds charged to the rank per recorded event.
    pub per_event_seconds: f64,
}

impl Default for InstrumentationModel {
    fn default() -> Self {
        InstrumentationModel {
            per_event_seconds: 3e-6,
        }
    }
}

impl InstrumentationModel {
    /// An overhead-free model, for tests needing exact times.
    pub fn free() -> InstrumentationModel {
        InstrumentationModel {
            per_event_seconds: 0.0,
        }
    }
}

/// Gathers per-rank logs produced by [`Traced`] wrappers into a [`Trace`].
pub struct TraceCollector {
    nprocs: u32,
    machine: String,
    model: InstrumentationModel,
    slots: Mutex<Vec<Option<ProcessTrace>>>,
    anomalies: Mutex<Vec<TraceBuildError>>,
}

impl TraceCollector {
    /// Collector for an `nprocs`-rank run on machine `machine`.
    pub fn new(nprocs: u32, machine: impl Into<String>, model: InstrumentationModel) -> Self {
        TraceCollector {
            nprocs,
            machine: machine.into(),
            model,
            slots: Mutex::new(vec![None; nprocs as usize]),
            anomalies: Mutex::new(Vec::new()),
        }
    }

    /// The instrumentation model ranks should charge.
    pub fn model(&self) -> InstrumentationModel {
        self.model
    }

    fn deposit(&self, log: ProcessTrace) {
        let mut slots = self.slots.lock();
        let rank = log.process as usize;
        // A misbehaving harness (rank relabeled, finish called twice)
        // must not abort collection: keep the first deposit, record the
        // anomaly, and let `try_into_trace` report it.
        if rank >= slots.len() {
            self.anomalies
                .lock()
                .push(TraceBuildError::UnknownRank(log.process));
            return;
        }
        if slots[rank].is_some() {
            self.anomalies
                .lock()
                .push(TraceBuildError::DuplicateDeposit(log.process));
            return;
        }
        slots[rank] = Some(log);
    }

    /// Assemble the full trace. Panics if any rank never deposited; use
    /// [`TraceCollector::try_into_trace`] to diagnose instead.
    pub fn into_trace(self) -> Trace {
        self.try_into_trace()
            .unwrap_or_else(|e| panic!("{}", e))
    }

    /// Assemble the full trace, reporting a missing rank as an error
    /// instead of aborting — the checker's entry path for possibly
    /// incomplete collections.
    pub fn try_into_trace(self) -> Result<Trace, TraceBuildError> {
        let mut anomalies = self.anomalies.into_inner();
        if !anomalies.is_empty() {
            // Deposits may race; report the smallest offender so the
            // error is deterministic.
            anomalies.sort();
            return Err(anomalies[0]);
        }
        let slots = self.slots.into_inner();
        let mut procs: Vec<ProcessTrace> = Vec::with_capacity(slots.len());
        for (rank, s) in slots.into_iter().enumerate() {
            procs.push(s.ok_or(TraceBuildError::MissingRank(rank as u32))?);
        }
        let trace = Trace {
            nprocs: self.nprocs,
            machine: self.machine,
            procs,
        };
        if pas2p_obs::enabled() {
            pas2p_obs::counter("trace.events").add(trace.total_events() as u64);
            pas2p_obs::counter("trace.bytes").add(trace.size_bytes());
        }
        Ok(trace)
    }
}

/// Errors assembling a [`Trace`] from per-rank deposits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceBuildError {
    /// A rank never deposited its log (it died or `finish` was skipped).
    MissingRank(u32),
    /// A rank deposited its log twice (`finish` called more than once);
    /// the first deposit was kept.
    DuplicateDeposit(u32),
    /// A deposit was labeled with a rank outside the run and discarded.
    UnknownRank(u32),
}

impl std::fmt::Display for TraceBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceBuildError::MissingRank(r) => {
                write!(f, "rank {} never finished tracing", r)
            }
            TraceBuildError::DuplicateDeposit(r) => {
                write!(f, "rank {} deposited its trace twice", r)
            }
            TraceBuildError::UnknownRank(r) => {
                write!(f, "deposit labeled rank {} is outside the run", r)
            }
        }
    }
}

impl std::error::Error for TraceBuildError {}

/// The `libpas2p` analog: wraps any [`Mpi`] implementation, recording an
/// event per communication call, then delegates. Create one per rank
/// inside the rank closure and call [`Traced::finish`] before returning.
pub struct Traced<'a, C: Mpi> {
    inner: &'a mut C,
    collector: &'a TraceCollector,
    events: Vec<TraceEvent>,
    per_event: f64,
}

impl<'a, C: Mpi> Traced<'a, C> {
    /// Instrument `inner`, depositing the log into `collector` on finish.
    pub fn new(inner: &'a mut C, collector: &'a TraceCollector) -> Self {
        let per_event = collector.model().per_event_seconds;
        Traced {
            inner,
            collector,
            events: Vec::new(),
            per_event,
        }
    }

    /// Number of events recorded so far on this rank.
    pub fn recorded(&self) -> usize {
        self.events.len()
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        t_post: f64,
        kind: EventKind,
        peer: Option<u32>,
        tag: Tag,
        size: u64,
        involved: u32,
        msg_id: u64,
        comm_id: u64,
        wildcard: bool,
    ) {
        let t_complete = self.inner.now();
        let number = self.events.len() as u64;
        self.events.push(TraceEvent {
            number,
            process: self.inner.rank(),
            t_post,
            t_complete,
            kind,
            peer,
            tag,
            size,
            involved,
            msg_id,
            comm_id,
            wildcard,
        });
        // Charge the instrumentation overhead after the event completes.
        self.inner.elapse(self.per_event);
    }

    /// Deposit this rank's log into the collector. Must be called exactly
    /// once, after the application code finishes.
    pub fn finish(self) {
        let log = ProcessTrace {
            process: self.inner.rank(),
            events: self.events,
            end_time: self.inner.now(),
        };
        self.collector.deposit(log);
    }
}

impl<'a, C: Mpi> Mpi for Traced<'a, C> {
    fn rank(&self) -> u32 {
        self.inner.rank()
    }

    fn size(&self) -> u32 {
        self.inner.size()
    }

    fn now(&self) -> f64 {
        self.inner.now()
    }

    fn compute(&mut self, work: Work) {
        // Computation is not an event in the PAS2P model; it is recovered
        // from inter-event gaps during analysis.
        self.inner.compute(work);
    }

    fn elapse(&mut self, seconds: f64) {
        self.inner.elapse(seconds);
    }

    fn send(&mut self, dest: u32, tag: Tag, data: &[u8]) -> u64 {
        let t_post = self.inner.now();
        let msg_id = self.inner.send(dest, tag, data);
        self.record(
            t_post,
            EventKind::Send,
            Some(dest),
            tag,
            data.len() as u64,
            1,
            msg_id,
            0,
            false,
        );
        msg_id
    }

    fn recv(&mut self, src: Option<u32>, tag: Option<Tag>) -> Message {
        let t_post = self.inner.now();
        let wildcard = src.is_none();
        let m = self.inner.recv(src, tag);
        self.record(
            t_post,
            EventKind::Recv,
            Some(m.src),
            m.tag,
            m.data.len() as u64,
            1,
            m.msg_id,
            0,
            wildcard,
        );
        m
    }

    fn wait(&mut self, req: pas2p_mpisim::RecvRequest) -> Message {
        // A nonblocking receive is one Recv event posted at irecv time and
        // completed at the wait — exactly how PMPI tracers attribute it.
        let t_post = req.posted_at;
        let wildcard = req.src.is_none();
        let m = self.inner.wait(req);
        self.record(
            t_post,
            EventKind::Recv,
            Some(m.src),
            m.tag,
            m.data.len() as u64,
            1,
            m.msg_id,
            0,
            wildcard,
        );
        m
    }

    fn barrier_in(&mut self, group: &Group) {
        let t_post = self.inner.now();
        self.inner.barrier_in(group);
        self.record(
            t_post,
            EventKind::Coll(crate::event::CollClass::Barrier),
            None,
            0,
            0,
            group.len() as u32,
            0,
            group.comm_id(),
            false,
        );
    }

    fn bcast_in(&mut self, group: &Group, root: u32, data: Option<Bytes>) -> Bytes {
        let t_post = self.inner.now();
        let size = data.as_ref().map(|d| d.len() as u64).unwrap_or(0);
        let out = self.inner.bcast_in(group, root, data);
        let size = size.max(out.len() as u64);
        self.record(
            t_post,
            EventKind::Coll(crate::event::CollClass::Bcast),
            None,
            0,
            size,
            group.len() as u32,
            0,
            group.comm_id(),
            false,
        );
        out
    }

    fn reduce_f64_in(
        &mut self,
        group: &Group,
        root: u32,
        xs: &[f64],
        op: ReduceOp,
    ) -> Option<Vec<f64>> {
        let t_post = self.inner.now();
        let out = self.inner.reduce_f64_in(group, root, xs, op);
        self.record(
            t_post,
            EventKind::Coll(crate::event::CollClass::Reduce),
            None,
            0,
            (xs.len() * 8) as u64,
            group.len() as u32,
            0,
            group.comm_id(),
            false,
        );
        out
    }

    fn allreduce_f64_in(&mut self, group: &Group, xs: &[f64], op: ReduceOp) -> Vec<f64> {
        let t_post = self.inner.now();
        let out = self.inner.allreduce_f64_in(group, xs, op);
        self.record(
            t_post,
            EventKind::Coll(crate::event::CollClass::Allreduce),
            None,
            0,
            (xs.len() * 8) as u64,
            group.len() as u32,
            0,
            group.comm_id(),
            false,
        );
        out
    }

    fn allgather_in(&mut self, group: &Group, data: Bytes) -> Vec<Bytes> {
        let t_post = self.inner.now();
        let size = data.len() as u64;
        let out = self.inner.allgather_in(group, data);
        self.record(
            t_post,
            EventKind::Coll(crate::event::CollClass::Allgather),
            None,
            0,
            size,
            group.len() as u32,
            0,
            group.comm_id(),
            false,
        );
        out
    }

    fn alltoall_in(&mut self, group: &Group, blocks: Vec<Bytes>) -> Vec<Bytes> {
        let t_post = self.inner.now();
        let size = blocks.iter().map(|b| b.len() as u64).max().unwrap_or(0);
        let out = self.inner.alltoall_in(group, blocks);
        self.record(
            t_post,
            EventKind::Coll(crate::event::CollClass::Alltoall),
            None,
            0,
            size,
            group.len() as u32,
            0,
            group.comm_id(),
            false,
        );
        out
    }

    fn gather_in(&mut self, group: &Group, root: u32, data: Bytes) -> Option<Vec<Bytes>> {
        let t_post = self.inner.now();
        let size = data.len() as u64;
        let out = self.inner.gather_in(group, root, data);
        self.record(
            t_post,
            EventKind::Coll(crate::event::CollClass::Gather),
            None,
            0,
            size,
            group.len() as u32,
            0,
            group.comm_id(),
            false,
        );
        out
    }

    fn scatter_in(&mut self, group: &Group, root: u32, blocks: Option<Vec<Bytes>>) -> Bytes {
        let t_post = self.inner.now();
        let size = blocks
            .as_ref()
            .map(|bs| bs.iter().map(|b| b.len() as u64).max().unwrap_or(0))
            .unwrap_or(0);
        let out = self.inner.scatter_in(group, root, blocks);
        let size = size.max(out.len() as u64);
        self.record(
            t_post,
            EventKind::Coll(crate::event::CollClass::Scatter),
            None,
            0,
            size,
            group.len() as u32,
            0,
            group.comm_id(),
            false,
        );
        out
    }

    fn counters(&self) -> Counters {
        self.inner.counters()
    }
}
