//! Recovering trace ingest: decode as much as possible, quarantine the
//! rest, and report exactly what happened.
//!
//! The strict decoder ([`crate::format::decode`]) treats the first bad
//! byte as fatal — correct for a checker, useless for a service that
//! must analyze whatever a half-dead run left behind. This module is the
//! resilient entry path: [`decode_recovering`] walks the same binary
//! format but *resyncs* instead of aborting. The format makes that
//! possible by construction: event records are fixed-size
//! ([`crate::format::EVENT_RECORD_BYTES`]), so after an undecodable or
//! implausible record the decoder can skip exactly one record slot and
//! try the next — corruption stays local to the record it hit. Whatever
//! cannot be salvaged (a truncated tail, a rank that never reported) is
//! quarantined and accounted for in an [`IngestReport`], never silently
//! dropped.
//!
//! The report is the contract with the rest of the pipeline: the core
//! pipeline decides between full-confidence and degraded analysis from
//! it, `pas2p-check` turns it into `INGEST-*` diagnostics, and the batch
//! driver classifies the job from it.

use crate::event::{EventKind, ProcessTrace, Trace};
use crate::format::{self, Cursor, EVENT_RECORD_BYTES};
use serde::{Deserialize, Serialize};

/// How much the pipeline's output can be trusted — the flag carried by
/// analyses, signatures and predictions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Confidence {
    /// Every record of every rank decoded cleanly and no ordering hazard
    /// was detected.
    #[default]
    Full,
    /// The data is complete, but the happens-before analysis found
    /// message races overlapping phase occurrences (`SIG-STAB-001`): the
    /// recorded logical order is one of several the program admits, so
    /// signature and prediction results are order-sensitive.
    OrderSensitive,
    /// Records or whole ranks were quarantined; results describe the
    /// surviving subset of the run.
    Degraded,
}

impl std::fmt::Display for Confidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Confidence::Full => write!(f, "full"),
            Confidence::OrderSensitive => write!(f, "order-sensitive"),
            Confidence::Degraded => write!(f, "degraded"),
        }
    }
}

/// Per-rank ingest outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RankHealth {
    /// Every record decoded cleanly.
    Intact,
    /// Some records were quarantined or renumbered; the rest survived.
    Recovered,
    /// The buffer ended before the rank's declared record count.
    Truncated,
    /// The rank's section never appeared in the buffer.
    Missing,
}

impl std::fmt::Display for RankHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RankHealth::Intact => write!(f, "intact"),
            RankHealth::Recovered => write!(f, "recovered"),
            RankHealth::Truncated => write!(f, "truncated"),
            RankHealth::Missing => write!(f, "missing"),
        }
    }
}

/// One rank's ingest accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankIngest {
    /// The rank.
    pub rank: u32,
    /// Outcome class.
    pub health: RankHealth,
    /// Records the section header declared.
    pub records_expected: u64,
    /// Records that decoded and validated.
    pub records_recovered: u64,
    /// Records skipped as undecodable or implausible.
    pub records_quarantined: u64,
    /// Recovered records whose event number disagreed with their
    /// position (duplicates, reordering) and were renumbered.
    pub records_renumbered: u64,
}

/// What ingest did to one buffer: per-rank health plus whole-buffer
/// accounting. Every field is deterministic in the input bytes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IngestReport {
    /// Ranks the header promised.
    pub nprocs: u32,
    /// Per-rank outcomes, indexed by rank.
    pub ranks: Vec<RankIngest>,
    /// Input buffer size.
    pub bytes_total: u64,
    /// Bytes skipped over (quarantined records and unreadable tails).
    pub bytes_skipped: u64,
    /// Collective events whose `involved` count was clamped to the
    /// surviving participants so the ordering can complete (filled in by
    /// [`repair_collectives`], not by the decoder).
    #[serde(default)]
    pub collectives_clamped: u64,
    /// Set when the header itself was unusable: nothing was recovered.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fatal: Option<String>,
}

impl IngestReport {
    /// True when anything at all was lost, repaired, or renumbered.
    pub fn is_degraded(&self) -> bool {
        self.fatal.is_some()
            || self.bytes_skipped > 0
            || self.collectives_clamped > 0
            || self.ranks.iter().any(|r| r.health != RankHealth::Intact)
    }

    /// The confidence class an analysis built on this ingest carries.
    pub fn confidence(&self) -> Confidence {
        if self.is_degraded() {
            Confidence::Degraded
        } else {
            Confidence::Full
        }
    }

    /// Ranks whose section never appeared.
    pub fn missing_ranks(&self) -> Vec<u32> {
        self.ranks
            .iter()
            .filter(|r| r.health == RankHealth::Missing)
            .map(|r| r.rank)
            .collect()
    }

    /// Total records recovered across all ranks.
    pub fn records_recovered(&self) -> u64 {
        self.ranks.iter().map(|r| r.records_recovered).sum()
    }

    /// Total records quarantined across all ranks.
    pub fn records_quarantined(&self) -> u64 {
        self.ranks.iter().map(|r| r.records_quarantined).sum()
    }

    /// Deterministic multi-line rendering (no timings, no pointers) —
    /// safe to compare byte-for-byte across runs and worker counts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(f) = &self.fatal {
            out.push_str(&format!("ingest: FATAL {}\n", f));
            return out;
        }
        out.push_str(&format!(
            "ingest: {} confidence, {}/{} bytes kept, {} record(s) quarantined, \
             {} collective(s) clamped\n",
            self.confidence(),
            self.bytes_total - self.bytes_skipped,
            self.bytes_total,
            self.records_quarantined(),
            self.collectives_clamped,
        ));
        for r in &self.ranks {
            if r.health == RankHealth::Intact {
                continue;
            }
            out.push_str(&format!(
                "  rank {:>3} {}: {}/{} records recovered, {} quarantined, {} renumbered\n",
                r.rank,
                r.health,
                r.records_recovered,
                r.records_expected,
                r.records_quarantined,
                r.records_renumbered,
            ));
        }
        out
    }

    fn fatal(buf_len: usize, why: String) -> IngestReport {
        IngestReport {
            bytes_total: buf_len as u64,
            bytes_skipped: buf_len as u64,
            fatal: Some(why),
            ..IngestReport::default()
        }
    }
}

/// A record survives quarantine only if its fields are plausible: a
/// valid kind tag, reserved bytes zero, finite timestamps, a peer that
/// names a rank (or none), and an involved count that fits the run. One
/// flipped bit in any of those fields condemns only its own record.
fn plausible(e: &crate::event::TraceEvent, nprocs: u32, last_complete: f64) -> bool {
    let times_ok = e.t_post.is_finite()
        && e.t_complete.is_finite()
        && e.t_post.abs() < 1e12
        && e.t_complete.abs() < 1e12
        && e.t_complete + 1e-12 >= e.t_post
        // Completions are monotone per process (`Trace::validate`).
        && e.t_complete + 1e-9 >= last_complete;
    let peer_ok = match e.peer {
        None => true,
        Some(p) => p < nprocs,
    };
    let involved_ok = match e.kind {
        EventKind::Coll(_) => e.involved >= 1 && e.involved <= nprocs,
        _ => e.involved == 1,
    };
    let wildcard_ok = !e.wildcard || e.kind == EventKind::Recv;
    times_ok && peer_ok && involved_ok && wildcard_ok
}

/// Decode with recovery: always returns a report; returns a trace unless
/// the header itself was unusable. The trace always has `nprocs`
/// process entries — ranks that never reported are present but empty,
/// so downstream indexing invariants hold.
pub fn decode_recovering(buf: &[u8]) -> (Option<Trace>, IngestReport) {
    let mut cur = Cursor { buf, pos: 0 };
    let header = match format::decode_header(&mut cur) {
        Ok(h) => h,
        Err(e) => {
            return (None, IngestReport::fatal(buf.len(), e.to_string()));
        }
    };
    // A corrupt rank count must not drive allocation: even one-record
    // sections need 20 header bytes each.
    let max_sections = buf.len() as u64 / 20 + 1;
    if header.nprocs == 0 || header.nprocs as u64 > max_sections {
        return (
            None,
            IngestReport::fatal(
                buf.len(),
                format!("implausible rank count {}", header.nprocs),
            ),
        );
    }
    let nprocs = header.nprocs;

    let mut report = IngestReport {
        nprocs,
        bytes_total: buf.len() as u64,
        ..IngestReport::default()
    };
    let mut slots: Vec<Option<ProcessTrace>> = (0..nprocs).map(|_| None).collect();
    let mut accounts: Vec<RankIngest> = (0..nprocs)
        .map(|rank| RankIngest {
            rank,
            health: RankHealth::Missing,
            records_expected: 0,
            records_recovered: 0,
            records_quarantined: 0,
            records_renumbered: 0,
        })
        .collect();

    // Walk the per-process sections until the buffer runs out. Section
    // headers we cannot read (truncated tail) end the walk; the ranks
    // not yet seen stay Missing.
    loop {
        if cur.pos >= buf.len() {
            break;
        }
        let section_start = cur.pos;
        let (process, count, end_time) = match (cur.u32(), cur.u64(), cur.f64()) {
            (Ok(p), Ok(c), Ok(t)) => (p, c, t),
            _ => {
                // A partial section header: unreadable tail.
                report.bytes_skipped += (buf.len() - section_start) as u64;
                break;
            }
        };
        if process >= nprocs || slots[process as usize].is_some() {
            // Garbage or duplicate section id — we cannot attribute what
            // follows, and with no in-band section framing the rest of
            // the buffer is unattributable too.
            report.bytes_skipped += (buf.len() - section_start) as u64;
            break;
        }
        let account = &mut accounts[process as usize];
        account.records_expected = count;

        let remaining = (buf.len() - cur.pos) as u64;
        let fit = remaining / EVENT_RECORD_BYTES;
        let readable = count.min(fit);
        let truncated = readable < count;

        let mut events = Vec::with_capacity(readable as usize);
        let mut last_complete = f64::NEG_INFINITY;
        for _ in 0..readable {
            let record_start = cur.pos;
            match format::decode_event(&mut cur, process) {
                Ok(e) if plausible(&e, nprocs, last_complete) => {
                    last_complete = e.t_complete;
                    events.push(e);
                }
                _ => {
                    // Resync: fixed-size records mean the next record
                    // starts exactly one slot later.
                    cur.pos = record_start + EVENT_RECORD_BYTES as usize;
                    account.records_quarantined += 1;
                    report.bytes_skipped += EVENT_RECORD_BYTES;
                }
            }
        }
        if truncated {
            let lost = buf.len() - cur.pos;
            report.bytes_skipped += lost as u64;
            cur.pos = buf.len();
        }

        // Renumber so `Trace::validate`'s dense-numbering invariant
        // holds; count every disagreement (duplicates, quarantine gaps).
        for (i, e) in events.iter_mut().enumerate() {
            if e.number != i as u64 {
                account.records_renumbered += 1;
                e.number = i as u64;
            }
        }
        account.records_recovered = events.len() as u64;
        // A corrupted end_time is repaired from the events themselves.
        let end_ok = end_time.is_finite()
            && end_time.abs() < 1e12
            && events.last().map(|e| end_time >= e.t_complete).unwrap_or(true);
        let end_time = if end_ok {
            end_time
        } else {
            events.last().map(|e| e.t_complete).unwrap_or(0.0)
        };
        account.health = if truncated {
            RankHealth::Truncated
        } else if account.records_quarantined > 0
            || account.records_renumbered > 0
            || !end_ok
        {
            RankHealth::Recovered
        } else {
            RankHealth::Intact
        };
        slots[process as usize] = Some(ProcessTrace {
            process,
            events,
            end_time,
        });
    }

    // Missing ranks become empty sections so `procs[rank]` stays valid
    // everywhere downstream.
    let procs: Vec<ProcessTrace> = slots
        .into_iter()
        .enumerate()
        .map(|(rank, s)| {
            s.unwrap_or(ProcessTrace {
                process: rank as u32,
                events: Vec::new(),
                end_time: 0.0,
            })
        })
        .collect();
    report.ranks = accounts;

    if pas2p_obs::enabled() {
        pas2p_obs::counter("ingest.runs").add(1);
        pas2p_obs::counter("ingest.records_recovered").add(report.records_recovered());
        pas2p_obs::counter("ingest.records_quarantined").add(report.records_quarantined());
        pas2p_obs::counter("ingest.bytes_skipped").add(report.bytes_skipped);
        pas2p_obs::counter("ingest.ranks_missing").add(report.missing_ranks().len() as u64);
        if report.is_degraded() {
            pas2p_obs::counter("ingest.degraded").add(1);
        }
    }

    let trace = Trace {
        nprocs,
        machine: header.machine,
        procs,
    };
    (Some(trace), report)
}

/// Repair pass for degraded traces: clamp every collective event's
/// `involved` count to the participants actually present on its
/// communicator, so the PAS2P ordering can complete with the survivors
/// instead of waiting forever for a rank that never reported. Returns
/// the number of events clamped; callers fold it into their
/// [`IngestReport::collectives_clamped`].
pub fn repair_collectives(trace: &mut Trace) -> u64 {
    use std::collections::{HashMap, HashSet};
    // Participants per communicator: the distinct processes that logged
    // at least one collective on it.
    let mut members: HashMap<u64, HashSet<u32>> = HashMap::new();
    for p in &trace.procs {
        for e in &p.events {
            if matches!(e.kind, EventKind::Coll(_)) {
                members.entry(e.comm_id).or_default().insert(e.process);
            }
        }
    }
    let mut clamped = 0u64;
    for p in &mut trace.procs {
        for e in &mut p.events {
            if matches!(e.kind, EventKind::Coll(_)) {
                if let Some(m) = members.get(&e.comm_id) {
                    let present = m.len() as u32;
                    if e.involved > present {
                        e.involved = present;
                        clamped += 1;
                    }
                }
            }
        }
    }
    if clamped > 0 && pas2p_obs::enabled() {
        pas2p_obs::counter("ingest.collectives_clamped").add(clamped);
    }
    clamped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CollClass, TraceEvent};
    use crate::format::encode;

    fn mk(number: u64, process: u32, kind: EventKind) -> TraceEvent {
        TraceEvent {
            number,
            process,
            t_post: number as f64,
            t_complete: number as f64 + 0.5,
            kind,
            peer: if matches!(kind, EventKind::Coll(_)) {
                None
            } else {
                Some((process + 1) % 2)
            },
            tag: 1,
            size: 64,
            involved: if matches!(kind, EventKind::Coll(_)) { 2 } else { 1 },
            msg_id: number + 1,
            comm_id: if matches!(kind, EventKind::Coll(_)) { 7 } else { 0 },
            wildcard: false,
        }
    }

    fn sample(nprocs: u32, events_per_rank: u64) -> Trace {
        Trace {
            nprocs,
            machine: "cluster-A".into(),
            procs: (0..nprocs)
                .map(|r| ProcessTrace {
                    process: r,
                    events: (0..events_per_rank)
                        .map(|i| {
                            mk(
                                i,
                                r,
                                match i % 3 {
                                    0 => EventKind::Send,
                                    1 => EventKind::Recv,
                                    _ => EventKind::Coll(CollClass::Allreduce),
                                },
                            )
                        })
                        .collect(),
                    end_time: events_per_rank as f64,
                })
                .collect(),
        }
    }

    #[test]
    fn clean_buffer_ingests_at_full_confidence() {
        let t = sample(2, 9);
        let (got, report) = decode_recovering(&encode(&t));
        assert_eq!(got.unwrap(), t);
        assert!(!report.is_degraded());
        assert_eq!(report.confidence(), Confidence::Full);
        assert_eq!(report.records_recovered(), 18);
        assert!(report.render().contains("full confidence"));
    }

    #[test]
    fn bad_magic_is_fatal_but_reported() {
        let mut buf = encode(&sample(2, 3));
        buf[0] = b'X';
        let (got, report) = decode_recovering(&buf);
        assert!(got.is_none());
        assert!(report.fatal.as_deref().unwrap().contains("magic"));
        assert!(report.is_degraded());
        assert!(report.render().starts_with("ingest: FATAL"));
    }

    #[test]
    fn truncated_tail_recovers_the_prefix() {
        let t = sample(2, 10);
        let buf = encode(&t);
        // Cut inside rank 1's records.
        let cut = buf.len() - (3 * EVENT_RECORD_BYTES as usize) - 7;
        let (got, report) = decode_recovering(&buf[..cut]);
        let got = got.unwrap();
        assert_eq!(got.procs[0].events.len(), 10);
        assert_eq!(report.ranks[0].health, RankHealth::Intact);
        assert_eq!(report.ranks[1].health, RankHealth::Truncated);
        assert!(report.ranks[1].records_recovered < 10);
        assert!(report.is_degraded());
        assert!(report.bytes_skipped > 0);
    }

    #[test]
    fn corrupt_record_is_quarantined_and_resynced() {
        let t = sample(2, 6);
        let mut buf = encode(&t);
        // Clobber the kind tag of record 2 of rank 0: header is
        // 8+4+4+4+9 = 29 bytes, section header 20 bytes, then records.
        let rec2 = 29 + 20 + 2 * EVENT_RECORD_BYTES as usize;
        buf[rec2 + 24] = 0xff; // kind tag byte
        let (got, report) = decode_recovering(&buf);
        let got = got.unwrap();
        assert_eq!(got.procs[0].events.len(), 5);
        assert_eq!(got.procs[1].events.len(), 6);
        assert_eq!(report.ranks[0].records_quarantined, 1);
        assert_eq!(report.ranks[0].health, RankHealth::Recovered);
        // Records after the bad one survive (resync worked) and were
        // renumbered to stay dense.
        assert!(report.ranks[0].records_renumbered > 0);
        got.validate().expect("recovered trace upholds invariants");
    }

    #[test]
    fn missing_rank_yields_empty_section() {
        let mut t = sample(3, 4);
        t.procs.remove(1); // rank 1 never reported
        let (got, report) = decode_recovering(&encode(&t));
        let got = got.unwrap();
        assert_eq!(got.procs.len(), 3);
        assert_eq!(got.procs[1].events.len(), 0);
        assert_eq!(got.procs[1].process, 1);
        assert_eq!(report.missing_ranks(), vec![1]);
        assert_eq!(report.ranks[1].health, RankHealth::Missing);
        assert!(report.is_degraded());
    }

    #[test]
    fn duplicate_events_are_renumbered() {
        let mut t = sample(2, 5);
        let dup = t.procs[0].events[2].clone();
        t.procs[0].events.insert(3, dup);
        let (got, report) = decode_recovering(&encode(&t));
        let got = got.unwrap();
        assert_eq!(got.procs[0].events.len(), 6);
        assert!(report.ranks[0].records_renumbered > 0);
        assert_eq!(report.ranks[0].health, RankHealth::Recovered);
        got.validate().expect("renumbering restores density");
    }

    #[test]
    fn nonfinite_end_time_is_repaired() {
        let mut t = sample(2, 3);
        t.procs[0].end_time = f64::NAN;
        let (got, report) = decode_recovering(&encode(&t));
        let got = got.unwrap();
        assert!(got.procs[0].end_time.is_finite());
        assert_eq!(report.ranks[0].health, RankHealth::Recovered);
    }

    #[test]
    fn empty_buffer_is_fatal() {
        let (got, report) = decode_recovering(&[]);
        assert!(got.is_none());
        assert!(report.fatal.is_some());
    }

    #[test]
    fn repair_clamps_collectives_to_survivors() {
        let mut t = sample(3, 9); // involved is wrong (2) but > survivors? use custom
        // Make the collectives claim all 3 ranks, then drop rank 2.
        for p in &mut t.procs {
            for e in &mut p.events {
                if matches!(e.kind, EventKind::Coll(_)) {
                    e.involved = 3;
                }
            }
        }
        t.procs.remove(2);
        let (got, _) = decode_recovering(&encode(&t));
        let mut got = got.unwrap();
        let clamped = repair_collectives(&mut got);
        assert!(clamped > 0);
        for p in &got.procs {
            for e in &p.events {
                if matches!(e.kind, EventKind::Coll(_)) {
                    assert_eq!(e.involved, 2, "clamped to surviving participants");
                }
            }
        }
        // Intact trace: repair is a no-op.
        let mut clean = sample(2, 6);
        assert_eq!(repair_collectives(&mut clean), 0);
    }

    #[test]
    fn report_render_is_deterministic() {
        let t = sample(2, 10);
        let buf = encode(&t);
        let cut = buf.len() - 40;
        let (_, a) = decode_recovering(&buf[..cut]);
        let (_, b) = decode_recovering(&buf[..cut]);
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
    }
}
