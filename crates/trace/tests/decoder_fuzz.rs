//! Property tests for decoder robustness: no sequence of byte mutations
//! applied to a valid trace buffer may panic any decoder. The strict
//! decoder must return a typed error or a trace; the recovering decoder
//! must additionally return a trace upholding `Trace::validate` whenever
//! it returns one at all.

use proptest::prelude::*;

use pas2p_trace::{compress, decompress, format, ingest, CollClass, EventKind};
use pas2p_trace::{ProcessTrace, Trace, TraceEvent};

fn mk(number: u64, process: u32, kind: EventKind, nprocs: u32) -> TraceEvent {
    let coll = matches!(kind, EventKind::Coll(_));
    TraceEvent {
        number,
        process,
        t_post: number as f64,
        t_complete: number as f64 + 0.5,
        kind,
        peer: if coll { None } else { Some((process + 1) % nprocs) },
        tag: 2,
        size: 128,
        involved: if coll { nprocs } else { 1 },
        msg_id: number + 1,
        comm_id: if coll { 11 } else { 0 },
        wildcard: false,
    }
}

fn sample(nprocs: u32, events_per_rank: u64) -> Trace {
    Trace {
        nprocs,
        machine: "cluster-A".into(),
        procs: (0..nprocs)
            .map(|r| ProcessTrace {
                process: r,
                events: (0..events_per_rank)
                    .map(|i| {
                        mk(
                            i,
                            r,
                            match i % 3 {
                                0 => EventKind::Send,
                                1 => EventKind::Recv,
                                _ => EventKind::Coll(CollClass::Allreduce),
                            },
                            nprocs,
                        )
                    })
                    .collect(),
                end_time: events_per_rank as f64,
            })
            .collect(),
    }
}

fn mutate(buf: &mut Vec<u8>, edits: &[(usize, usize)], keep_per_mille: usize) {
    for &(idx, val) in edits {
        if !buf.is_empty() {
            let i = idx % buf.len();
            buf[i] = (val % 256) as u8;
        }
    }
    let keep = buf.len() * keep_per_mille.min(1000) / 1000;
    buf.truncate(keep);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The strict decoder returns `Ok` or a typed error — never panics —
    /// on arbitrarily mutated buffers.
    #[test]
    fn strict_decode_never_panics(
        nprocs in prop_oneof![Just(1u32), Just(2), Just(4)],
        events in 0u64..12,
        edits in prop::collection::vec((0usize..1 << 16, 0usize..256), 0..24),
        keep in 0usize..1001,
    ) {
        let mut buf = format::encode(&sample(nprocs, events));
        mutate(&mut buf, &edits, keep);
        let _ = format::decode(&buf);
    }

    /// The recovering decoder never panics, and any trace it salvages
    /// upholds the full `Trace::validate` contract no matter what the
    /// mutations did.
    #[test]
    fn recovering_decode_salvages_valid_traces(
        nprocs in prop_oneof![Just(1u32), Just(2), Just(4)],
        events in 0u64..12,
        edits in prop::collection::vec((0usize..1 << 16, 0usize..256), 0..24),
        keep in 0usize..1001,
    ) {
        let mut buf = format::encode(&sample(nprocs, events));
        mutate(&mut buf, &edits, keep);
        let (trace, report) = ingest::decode_recovering(&buf);
        prop_assert_eq!(report.bytes_total, buf.len() as u64);
        if let Some(t) = trace {
            prop_assert!(t.validate().is_ok(), "salvaged trace violates invariants");
        } else {
            prop_assert!(report.fatal.is_some());
        }
    }

    /// An unmutated buffer always ingests losslessly at full confidence.
    #[test]
    fn clean_buffers_ingest_losslessly(
        nprocs in prop_oneof![Just(1u32), Just(2), Just(4)],
        events in 0u64..12,
    ) {
        let t = sample(nprocs, events);
        let (got, report) = ingest::decode_recovering(&format::encode(&t));
        prop_assert_eq!(got.as_ref(), Some(&t));
        prop_assert!(!report.is_degraded());
    }

    /// The compressed-format decoder is equally panic-free.
    #[test]
    fn decompress_never_panics(
        nprocs in prop_oneof![Just(1u32), Just(2), Just(4)],
        events in 0u64..12,
        edits in prop::collection::vec((0usize..1 << 16, 0usize..256), 0..24),
        keep in 0usize..1001,
    ) {
        let mut buf = compress(&sample(nprocs, events));
        mutate(&mut buf, &edits, keep);
        let _ = decompress(&buf);
    }
}
