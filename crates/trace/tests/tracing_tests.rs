//! End-to-end tests: trace real simulated runs through the interposition
//! layer.

use pas2p_machine::{cluster_a, JitterModel, MappingPolicy, Work};
use pas2p_mpisim::{run_app, Mpi, ReduceOp, SimConfig};
use pas2p_trace::{format, EventKind, InstrumentationModel, Trace, TraceCollector, Traced};
use std::sync::Arc;

fn quiet_machine() -> pas2p_machine::MachineModel {
    let mut m = cluster_a();
    m.jitter = JitterModel::none();
    m
}

/// Run a 4-rank ring program under tracing and return the trace.
fn traced_ring(iters: usize, model: InstrumentationModel) -> Trace {
    let n = 4;
    let collector = Arc::new(TraceCollector::new(n, "cluster-A", model));
    let cfg = SimConfig::new(quiet_machine(), n, MappingPolicy::Block);
    let col = collector.clone();
    run_app(&cfg, move |ctx| {
        let n = ctx.size();
        let rank = ctx.rank();
        let mut t = Traced::new(ctx, &col);
        let next = (rank + 1) % n;
        let prev = (rank + n - 1) % n;
        for _ in 0..iters {
            t.compute(Work::flops(1e7));
            t.send(next, 1, &[0u8; 256]);
            t.recv(Some(prev), Some(1));
            t.allreduce_f64(&[1.0], ReduceOp::Sum);
        }
        t.finish();
    });
    Arc::into_inner(collector).unwrap().into_trace()
}

#[test]
fn events_recorded_per_rank() {
    let t = traced_ring(5, InstrumentationModel::free());
    assert_eq!(t.nprocs, 4);
    for p in &t.procs {
        // 5 iterations × (send + recv + allreduce)
        assert_eq!(p.events.len(), 15);
    }
    t.validate().unwrap();
}

#[test]
fn event_kinds_follow_program_order() {
    let t = traced_ring(2, InstrumentationModel::free());
    let kinds: Vec<_> = t.procs[0].events.iter().map(|e| e.kind).collect();
    use pas2p_trace::CollClass;
    assert_eq!(kinds[0], EventKind::Send);
    // recv and send both precede the collective
    assert_eq!(kinds[2], EventKind::Coll(CollClass::Allreduce));
    assert_eq!(kinds[3], EventKind::Send);
}

#[test]
fn send_recv_relation_links_messages() {
    let t = traced_ring(3, InstrumentationModel::free());
    // Every send's msg_id on rank 0 must appear as a recv msg_id on rank 1.
    let sent: Vec<u64> = t.procs[0]
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Send)
        .map(|e| e.msg_id)
        .collect();
    let received: Vec<u64> = t.procs[1]
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Recv)
        .map(|e| e.msg_id)
        .collect();
    assert_eq!(sent, received);
    assert!(sent.iter().all(|&id| id > 0));
}

#[test]
fn collective_involves_whole_group() {
    let t = traced_ring(1, InstrumentationModel::free());
    for p in &t.procs {
        let coll = p.events.iter().find(|e| e.kind.is_collective()).unwrap();
        assert_eq!(coll.involved, 4);
        assert_eq!(coll.peer, None);
    }
}

#[test]
fn instrumentation_overhead_inflates_elapsed_time() {
    let free = traced_ring(20, InstrumentationModel::free());
    let paid = traced_ring(20, InstrumentationModel { per_event_seconds: 1e-3 });
    assert!(
        paid.elapsed() > free.elapsed() + 0.02,
        "paid {} vs free {}",
        paid.elapsed(),
        free.elapsed()
    );
}

#[test]
fn physical_times_are_monotonic_per_process() {
    let t = traced_ring(10, InstrumentationModel::default());
    for p in &t.procs {
        for w in p.events.windows(2) {
            assert!(w[1].t_post >= w[0].t_complete - 1e-9);
        }
    }
}

#[test]
fn trace_binary_roundtrip_of_real_run() {
    let t = traced_ring(4, InstrumentationModel::default());
    let buf = format::encode(&t);
    assert_eq!(buf.len() as u64, t.size_bytes());
    let back = format::decode(&buf).unwrap();
    assert_eq!(back, t);
}

#[test]
fn trace_size_grows_with_events() {
    let small = traced_ring(2, InstrumentationModel::free());
    let large = traced_ring(20, InstrumentationModel::free());
    assert!(large.size_bytes() > small.size_bytes());
    assert_eq!(
        large.size_bytes() - small.size_bytes(),
        // 18 extra iterations × 3 events × 4 ranks × 56 bytes
        18 * 3 * 4 * pas2p_trace::EVENT_RECORD_BYTES
    );
}

#[test]
fn sizes_recorded_in_bytes() {
    let t = traced_ring(1, InstrumentationModel::free());
    let send = t.procs[0]
        .events
        .iter()
        .find(|e| e.kind == EventKind::Send)
        .unwrap();
    assert_eq!(send.size, 256);
    let coll = t.procs[0]
        .events
        .iter()
        .find(|e| e.kind.is_collective())
        .unwrap();
    assert_eq!(coll.size, 8); // one f64
}
