//! Process → core placement.
//!
//! The paper's experimental methodology (Fig 12) executes the signature on
//! the target machine "changing the mapping policies", including
//! oversubscribed runs (256-process signatures on the 128-core cluster A,
//! two processes per core — Table 7). A [`Mapping`] records for every rank
//! the node/socket/core it lands on plus the number of ranks sharing that
//! core.

use crate::MachineModel;
use serde::{Deserialize, Serialize};

/// Physical location of one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoreLoc {
    /// Node index within the cluster.
    pub node: u32,
    /// Socket index within the node.
    pub socket: u32,
    /// Core index within the socket.
    pub core: u32,
}

/// How ranks are laid out over the machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingPolicy {
    /// Fill each node completely before moving to the next (MPI "by node" /
    /// sequential fill). Neighbouring ranks share nodes — good for
    /// nearest-neighbour communication patterns.
    Block,
    /// Deal ranks round-robin across nodes (MPI "by slot" cyclic).
    /// Neighbouring ranks land on different nodes.
    Cyclic,
    /// Explicit per-rank core assignment, as `(node, socket, core)`.
    Explicit(Vec<CoreLoc>),
}

/// A concrete placement of `n` ranks on a machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mapping {
    locs: Vec<CoreLoc>,
    /// Ranks sharing the core of each rank (>= 1). Index by rank.
    share: Vec<u32>,
    /// Name of the machine this mapping was built for.
    pub machine: String,
}

impl Mapping {
    /// Build a mapping for `nprocs` ranks on `machine` under `policy`.
    ///
    /// Oversubscription wraps around the core list; `share(r)` then
    /// reports how many ranks ended up on rank `r`'s core.
    pub fn build(machine: &MachineModel, nprocs: u32, policy: MappingPolicy) -> Mapping {
        assert!(nprocs > 0, "mapping requires at least one process");
        let cps = machine.cores_per_socket;
        let spn = machine.sockets_per_node;
        let cpn = machine.cores_per_node();
        let total = machine.total_cores();

        let locs: Vec<CoreLoc> = match policy {
            MappingPolicy::Block => (0..nprocs)
                .map(|r| {
                    let flat = r % total;
                    CoreLoc {
                        node: flat / cpn,
                        socket: (flat % cpn) / cps,
                        core: flat % cps,
                    }
                })
                .collect(),
            MappingPolicy::Cyclic => (0..nprocs)
                .map(|r| {
                    let flat = r % total;
                    let node = flat % machine.nodes;
                    let within = flat / machine.nodes;
                    CoreLoc {
                        node,
                        socket: (within / cps) % spn,
                        core: within % cps,
                    }
                })
                .collect(),
            MappingPolicy::Explicit(locs) => {
                assert_eq!(
                    locs.len(),
                    nprocs as usize,
                    "explicit mapping must cover every rank"
                );
                for l in &locs {
                    assert!(l.node < machine.nodes, "node {} out of range", l.node);
                    assert!(l.socket < spn, "socket {} out of range", l.socket);
                    assert!(l.core < cps, "core {} out of range", l.core);
                }
                locs
            }
        };

        // Count ranks per physical core to derive sharing factors.
        let mut counts = std::collections::HashMap::new();
        for l in &locs {
            *counts.entry(*l).or_insert(0u32) += 1;
        }
        let share = locs.iter().map(|l| counts[l]).collect();

        Mapping {
            locs,
            share,
            machine: machine.name.clone(),
        }
    }

    /// Number of mapped ranks.
    pub fn nprocs(&self) -> u32 {
        self.locs.len() as u32
    }

    /// Physical location of `rank`.
    pub fn loc(&self, rank: u32) -> CoreLoc {
        self.locs[rank as usize]
    }

    /// How many ranks share `rank`'s core (1 = dedicated).
    pub fn core_share(&self, rank: u32) -> u32 {
        self.share[rank as usize]
    }

    /// True if any core hosts more than one rank.
    pub fn is_oversubscribed(&self) -> bool {
        self.share.iter().any(|&s| s > 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{cluster_a, cluster_c};

    #[test]
    fn block_mapping_fills_nodes_sequentially() {
        let m = cluster_a(); // 4 cores/node
        let map = m.map(8, MappingPolicy::Block);
        assert_eq!(map.loc(0).node, 0);
        assert_eq!(map.loc(3).node, 0);
        assert_eq!(map.loc(4).node, 1);
        assert!(!map.is_oversubscribed());
    }

    #[test]
    fn cyclic_mapping_spreads_across_nodes() {
        let m = cluster_a();
        let map = m.map(8, MappingPolicy::Cyclic);
        assert_eq!(map.loc(0).node, 0);
        assert_eq!(map.loc(1).node, 1);
        assert_ne!(map.loc(0).node, map.loc(1).node);
    }

    #[test]
    fn oversubscription_doubles_share() {
        // 256 ranks on 128-core cluster A: the paper's Table 7 setup.
        let m = cluster_a();
        let map = m.map(256, MappingPolicy::Block);
        assert!(map.is_oversubscribed());
        for r in 0..256 {
            assert_eq!(map.core_share(r), 2, "rank {} share", r);
        }
    }

    #[test]
    fn exact_fill_is_dedicated() {
        let m = cluster_c();
        let map = m.map(m.total_cores(), MappingPolicy::Block);
        for r in 0..m.total_cores() {
            assert_eq!(map.core_share(r), 1);
        }
    }

    #[test]
    fn explicit_mapping_respected() {
        let m = cluster_a();
        let locs = vec![
            CoreLoc { node: 5, socket: 0, core: 1 },
            CoreLoc { node: 5, socket: 0, core: 1 },
        ];
        let map = m.map(2, MappingPolicy::Explicit(locs));
        assert_eq!(map.loc(0).node, 5);
        assert_eq!(map.core_share(0), 2);
        assert_eq!(map.core_share(1), 2);
    }

    #[test]
    #[should_panic(expected = "explicit mapping must cover every rank")]
    fn explicit_mapping_wrong_len_panics() {
        let m = cluster_a();
        m.map(3, MappingPolicy::Explicit(vec![CoreLoc { node: 0, socket: 0, core: 0 }]));
    }

    #[test]
    fn socket_indices_stay_in_range() {
        let m = cluster_c();
        for policy in [MappingPolicy::Block, MappingPolicy::Cyclic] {
            let map = m.map(512, policy);
            for r in 0..512 {
                let l = map.loc(r);
                assert!(l.node < m.nodes);
                assert!(l.socket < m.sockets_per_node);
                assert!(l.core < m.cores_per_socket);
            }
        }
    }
}
