//! Per-core compute cost model.
//!
//! Applications in `pas2p-apps` perform (scaled-down but real) numerics and
//! *declare* the work the full-size computation would perform. The machine
//! model converts that abstract work into virtual seconds using a simple
//! roofline-style model: time = flops / flop_rate + bytes / memory_bw.

use serde::{Deserialize, Serialize};

/// Abstract computational work: floating-point operations plus memory
/// traffic. Both contribute to the modeled execution time.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Work {
    /// Floating-point operations performed.
    pub flops: f64,
    /// Bytes moved to/from memory (beyond cache).
    pub mem_bytes: f64,
}

impl Work {
    /// Pure floating-point work.
    pub fn flops(flops: f64) -> Work {
        Work { flops, mem_bytes: 0.0 }
    }

    /// Pure memory-bound work.
    pub fn mem(bytes: f64) -> Work {
        Work { flops: 0.0, mem_bytes: bytes }
    }

    /// Combined compute and memory work.
    pub fn new(flops: f64, mem_bytes: f64) -> Work {
        Work { flops, mem_bytes }
    }

    /// Sum of two work descriptors.
    pub fn plus(self, other: Work) -> Work {
        Work {
            flops: self.flops + other.flops,
            mem_bytes: self.mem_bytes + other.mem_bytes,
        }
    }

    /// Scale work by a factor (e.g. problem-size scaling).
    pub fn scaled(self, k: f64) -> Work {
        Work {
            flops: self.flops * k,
            mem_bytes: self.mem_bytes * k,
        }
    }

    /// True if this work is empty (costs no time).
    pub fn is_zero(self) -> bool {
        self.flops == 0.0 && self.mem_bytes == 0.0
    }
}

/// Converts [`Work`] to seconds for one core of a machine.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ComputeModel {
    /// Sustained floating-point rate of one core, in FLOP/s.
    pub flops_per_sec: f64,
    /// Sustained per-core memory bandwidth in bytes/s. On machines with
    /// many cores per socket (cluster C's 4× quad-core nodes) this is lower
    /// than on small nodes, reproducing the paper's observation that the
    /// same application behaves differently per core architecture.
    pub mem_bw: f64,
}

impl ComputeModel {
    /// Time in seconds to execute `work` on a dedicated core.
    pub fn time(&self, work: Work) -> f64 {
        debug_assert!(work.flops >= 0.0 && work.mem_bytes >= 0.0);
        work.flops / self.flops_per_sec + work.mem_bytes / self.mem_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ComputeModel {
        ComputeModel {
            flops_per_sec: 2.0e9,
            mem_bw: 3.0e9,
        }
    }

    #[test]
    fn pure_flops_time() {
        let t = model().time(Work::flops(4.0e9));
        assert!((t - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pure_mem_time() {
        let t = model().time(Work::mem(6.0e9));
        assert!((t - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_work_adds_components() {
        let t = model().time(Work::new(2.0e9, 3.0e9));
        assert!((t - 2.0).abs() < 1e-12);
    }

    #[test]
    fn work_algebra() {
        let w = Work::flops(10.0).plus(Work::mem(20.0)).scaled(2.0);
        assert_eq!(w.flops, 20.0);
        assert_eq!(w.mem_bytes, 40.0);
        assert!(!w.is_zero());
        assert!(Work::default().is_zero());
    }

    #[test]
    fn zero_work_costs_nothing() {
        assert_eq!(model().time(Work::default()), 0.0);
    }
}
