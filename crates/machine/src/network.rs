//! Interconnection network cost models.
//!
//! Point-to-point transfers use the classic latency + size/bandwidth model
//! with a per-message CPU overhead. Collectives are costed with stage
//! models matching the algorithms production MPIs use: `ceil(log2 p)`
//! stages for tree/doubling collectives and `p − 1` exchange steps for
//! all-to-all.

use serde::{Deserialize, Serialize};

/// Which collective operation is being costed. Mirrors the MPI collectives
/// the paper's trace layer intercepts (`MPI_Bcast`, `MPI_Allreduce`,
/// `MPI_Alltoall`, barriers, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// Synchronization only; no payload.
    Barrier,
    /// One-to-all broadcast (binomial tree).
    Bcast,
    /// All-to-one reduction (binomial tree).
    Reduce,
    /// All-to-all reduction (recursive doubling).
    Allreduce,
    /// Each process receives every process's block (ring).
    Allgather,
    /// Personalised all-to-all exchange (pairwise).
    Alltoall,
    /// All-to-one gather (binomial tree).
    Gather,
    /// One-to-all scatter (binomial tree).
    Scatter,
}

impl CollectiveKind {
    /// Short uppercase name as it would appear in an MPI trace.
    pub fn mpi_name(self) -> &'static str {
        match self {
            CollectiveKind::Barrier => "MPI_Barrier",
            CollectiveKind::Bcast => "MPI_Bcast",
            CollectiveKind::Reduce => "MPI_Reduce",
            CollectiveKind::Allreduce => "MPI_Allreduce",
            CollectiveKind::Allgather => "MPI_Allgather",
            CollectiveKind::Alltoall => "MPI_Alltoall",
            CollectiveKind::Gather => "MPI_Gather",
            CollectiveKind::Scatter => "MPI_Scatter",
        }
    }
}

/// A latency/bandwidth link model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NetworkModel {
    /// One-way small-message latency in seconds.
    pub latency: f64,
    /// Sustained bandwidth in bytes/s.
    pub bandwidth: f64,
    /// Per-message sender/receiver CPU overhead in seconds (the `o` of the
    /// LogP family). Charged once per message on top of the wire time.
    pub per_msg_overhead: f64,
}

impl NetworkModel {
    /// Time for one point-to-point message of `bytes` payload.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth + self.per_msg_overhead
    }

    /// Time for a collective of `procs` participants each contributing
    /// `bytes` of payload.
    pub fn collective_time(&self, kind: CollectiveKind, procs: u32, bytes: u64) -> f64 {
        if procs <= 1 {
            return self.per_msg_overhead;
        }
        let stages = (procs as f64).log2().ceil();
        match kind {
            CollectiveKind::Barrier => stages * (self.latency + self.per_msg_overhead),
            CollectiveKind::Bcast
            | CollectiveKind::Reduce
            | CollectiveKind::Gather
            | CollectiveKind::Scatter => stages * self.transfer_time(bytes),
            CollectiveKind::Allreduce => {
                // Recursive doubling: log2(p) stages of full-size exchange.
                stages * self.transfer_time(bytes)
            }
            CollectiveKind::Allgather => {
                // Ring: p-1 steps of one block each.
                (procs - 1) as f64 * self.transfer_time(bytes)
            }
            CollectiveKind::Alltoall => {
                // Pairwise exchange: p-1 steps, each sending one block.
                (procs - 1) as f64 * self.transfer_time(bytes)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gige() -> NetworkModel {
        NetworkModel {
            latency: 50e-6,
            bandwidth: 110e6,
            per_msg_overhead: 2e-6,
        }
    }

    #[test]
    fn transfer_time_is_latency_plus_wire() {
        let n = gige();
        let t = n.transfer_time(110_000_000);
        assert!((t - (50e-6 + 1.0 + 2e-6)).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_still_costs_latency() {
        let n = gige();
        assert!(n.transfer_time(0) >= n.latency);
    }

    #[test]
    fn barrier_scales_logarithmically() {
        let n = gige();
        let b8 = n.collective_time(CollectiveKind::Barrier, 8, 0);
        let b64 = n.collective_time(CollectiveKind::Barrier, 64, 0);
        assert!((b64 / b8 - 2.0).abs() < 1e-9, "log2(64)/log2(8) = 2");
    }

    #[test]
    fn alltoall_scales_linearly() {
        let n = gige();
        let a8 = n.collective_time(CollectiveKind::Alltoall, 8, 1024);
        let a16 = n.collective_time(CollectiveKind::Alltoall, 16, 1024);
        assert!((a16 / a8 - 15.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn single_process_collective_is_trivial() {
        let n = gige();
        assert!(n.collective_time(CollectiveKind::Allreduce, 1, 1 << 20) < 1e-5);
    }

    #[test]
    fn bcast_cheaper_than_alltoall_at_scale() {
        let n = gige();
        let b = n.collective_time(CollectiveKind::Bcast, 64, 4096);
        let a = n.collective_time(CollectiveKind::Alltoall, 64, 4096);
        assert!(b < a);
    }

    #[test]
    fn mpi_names_are_mpi_prefixed() {
        for k in [
            CollectiveKind::Barrier,
            CollectiveKind::Bcast,
            CollectiveKind::Reduce,
            CollectiveKind::Allreduce,
            CollectiveKind::Allgather,
            CollectiveKind::Alltoall,
            CollectiveKind::Gather,
            CollectiveKind::Scatter,
        ] {
            assert!(k.mpi_name().starts_with("MPI_"));
        }
    }
}
