//! Machine models for the PAS2P reproduction.
//!
//! The PAS2P paper evaluates on four real clusters (Table 2): cluster A
//! (Dual-Core Xeon 5150, Gigabit Ethernet, 128 cores), cluster B (2× quad
//! Xeon E5430, Gigabit Ethernet, 64 cores), cluster C (4× quad Xeon E7350,
//! InfiniBand, 256 cores) and cluster D (Itanium Montvale NUMA,
//! InfiniBand). This crate models those machines so that the simulated
//! message-passing runtime (`pas2p-mpisim`) can charge *virtual time* for
//! computation and communication, producing per-machine execution times the
//! way the real clusters would.
//!
//! A [`MachineModel`] is composed of:
//!
//! * a topology (nodes × sockets × cores),
//! * a [`ComputeModel`] converting abstract [`Work`] into seconds,
//! * two [`NetworkModel`]s (inter-node fabric and intra-node shared memory),
//! * a [`JitterModel`] adding deterministic, seeded noise (OS noise,
//!   network contention) so that repeated phases exhibit the small
//!   variability that makes prediction error non-trivial, and
//! * an instruction-set tag ([`IsaKind`]) used to reproduce the paper's
//!   Appendix E restriction that a signature cannot be ported across ISAs.
//!
//! Process placement is described by a [`Mapping`] produced from a
//! [`MappingPolicy`]; oversubscription (e.g. the paper's 256-process
//! signature on the 128-core cluster A) multiplies compute cost by the
//! number of processes sharing a core.

#![forbid(unsafe_code)]

pub mod compute;
pub mod jitter;
pub mod mapping;
pub mod network;
pub mod presets;

pub use compute::{ComputeModel, Work};
pub use jitter::JitterModel;
pub use mapping::{CoreLoc, Mapping, MappingPolicy};
pub use network::{CollectiveKind, NetworkModel};
pub use presets::{cluster_a, cluster_b, cluster_c, cluster_d, preset_by_name};

use serde::{Deserialize, Serialize};

/// Instruction-set architecture of a machine.
///
/// PAS2P signatures contain checkpointed binaries, so they only run on the
/// ISA they were built on (paper §7): porting to a different ISA requires
/// reconstructing the signature from the extracted phases and weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IsaKind {
    /// x86-64 (clusters A, B, C in the paper).
    X86_64,
    /// Itanium IA-64 (cluster D in the paper).
    Ia64,
}

impl std::fmt::Display for IsaKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsaKind::X86_64 => write!(f, "x86_64"),
            IsaKind::Ia64 => write!(f, "ia64"),
        }
    }
}

/// A full machine (cluster) model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineModel {
    /// Human-readable name, e.g. `"cluster-A"`.
    pub name: String,
    /// Number of physical nodes in the cluster.
    pub nodes: u32,
    /// CPU sockets per node.
    pub sockets_per_node: u32,
    /// Cores per socket.
    pub cores_per_socket: u32,
    /// Per-core compute model.
    pub compute: ComputeModel,
    /// Inter-node interconnection network.
    pub network: NetworkModel,
    /// Intra-node (shared-memory) transfer model.
    pub intra: NetworkModel,
    /// Noise model for compute and communication segments.
    pub jitter: JitterModel,
    /// Instruction-set architecture.
    pub isa: IsaKind,
}

impl MachineModel {
    /// Total number of cores in the machine.
    pub fn total_cores(&self) -> u32 {
        self.nodes * self.sockets_per_node * self.cores_per_socket
    }

    /// Cores on a single node.
    pub fn cores_per_node(&self) -> u32 {
        self.sockets_per_node * self.cores_per_socket
    }

    /// Build a process→core mapping for `nprocs` processes under `policy`.
    ///
    /// More processes than cores is allowed (oversubscription); the mapping
    /// records how many processes share each core so compute time can be
    /// scaled accordingly.
    pub fn map(&self, nprocs: u32, policy: MappingPolicy) -> Mapping {
        Mapping::build(self, nprocs, policy)
    }

    /// Point-to-point message cost in seconds between two mapped ranks.
    ///
    /// Chooses the intra-node or inter-node model depending on placement.
    pub fn p2p_cost(&self, mapping: &Mapping, from: u32, to: u32, bytes: u64) -> f64 {
        if from == to {
            // A self-message costs only a local copy.
            return self.intra.transfer_time(bytes) * 0.5;
        }
        let a = mapping.loc(from);
        let b = mapping.loc(to);
        if a.node == b.node {
            self.intra.transfer_time(bytes)
        } else {
            self.network.transfer_time(bytes)
        }
    }

    /// Cost of a collective operation over `procs` mapped processes moving
    /// `bytes` per process.
    ///
    /// Uses tree/stage models (`ceil(log2 p)` stages for rooted and
    /// doubling collectives, `p-1` exchange steps for all-to-all) over the
    /// slowest link class actually used by the mapping: a collective that
    /// spans several nodes is dominated by the inter-node fabric.
    pub fn collective_cost(
        &self,
        mapping: &Mapping,
        kind: CollectiveKind,
        procs: &[u32],
        bytes: u64,
    ) -> f64 {
        let spans_nodes = procs
            .iter()
            .map(|&r| mapping.loc(r).node)
            .collect::<std::collections::HashSet<_>>()
            .len()
            > 1;
        let link = if spans_nodes { &self.network } else { &self.intra };
        link.collective_time(kind, procs.len() as u32, bytes)
    }

    /// Compute time in seconds for `work` executed by a rank whose core is
    /// shared by `core_share` processes (1 = dedicated core).
    pub fn compute_time(&self, work: Work, core_share: u32) -> f64 {
        self.compute.time(work) * core_share as f64
    }

    /// Returns a copy of this machine with a different jitter seed; used by
    /// the experimental harness so base and target runs see independent
    /// noise streams.
    pub fn with_seed(&self, seed: u64) -> MachineModel {
        let mut m = self.clone();
        m.jitter.seed = seed;
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_core_counts_match_table2() {
        assert_eq!(cluster_a().total_cores(), 128);
        assert_eq!(cluster_b().total_cores(), 64);
        assert_eq!(cluster_c().total_cores(), 256);
        // Cluster D is a 169-core NUMA machine in the paper; we round to a
        // regular topology (see presets.rs).
        assert!(cluster_d().total_cores() >= 160);
    }

    #[test]
    fn isa_tags_match_paper() {
        assert_eq!(cluster_a().isa, IsaKind::X86_64);
        assert_eq!(cluster_b().isa, IsaKind::X86_64);
        assert_eq!(cluster_c().isa, IsaKind::X86_64);
        assert_eq!(cluster_d().isa, IsaKind::Ia64);
    }

    #[test]
    fn intra_node_is_cheaper_than_inter_node() {
        for m in [cluster_a(), cluster_b(), cluster_c(), cluster_d()] {
            let map = m.map(m.total_cores(), MappingPolicy::Block);
            // Rank 0 and 1 share a node under block mapping.
            let intra = m.p2p_cost(&map, 0, 1, 4096);
            // Rank 0 and the last rank are on different nodes.
            let inter = m.p2p_cost(&map, 0, m.total_cores() - 1, 4096);
            assert!(
                intra < inter,
                "{}: intra {} !< inter {}",
                m.name,
                intra,
                inter
            );
        }
    }

    #[test]
    fn infiniband_beats_gige() {
        let a = cluster_a(); // GigE
        let c = cluster_c(); // InfiniBand
        let map_a = a.map(64, MappingPolicy::Block);
        let map_c = c.map(64, MappingPolicy::Block);
        let far_a = a.p2p_cost(&map_a, 0, 63, 1 << 20);
        let far_c = c.p2p_cost(&map_c, 0, 63, 1 << 20);
        // Different nodes in both cases (4 cores/node on A, 16 on C).
        assert!(far_c < far_a, "IB {} !< GigE {}", far_c, far_a);
    }

    #[test]
    fn oversubscription_slows_compute() {
        let m = cluster_a();
        let w = Work::flops(1e9);
        assert!((m.compute_time(w, 2) - 2.0 * m.compute_time(w, 1)).abs() < 1e-12);
    }

    #[test]
    fn self_message_is_cheapest() {
        let m = cluster_b();
        let map = m.map(16, MappingPolicy::Block);
        assert!(m.p2p_cost(&map, 3, 3, 1024) < m.p2p_cost(&map, 3, 4, 1024));
    }

    #[test]
    fn collective_cost_grows_with_processes() {
        let m = cluster_c();
        let map = m.map(64, MappingPolicy::Block);
        let small: Vec<u32> = (0..8).collect();
        let large: Vec<u32> = (0..64).collect();
        let cs = m.collective_cost(&map, CollectiveKind::Allreduce, &small, 4096);
        let cl = m.collective_cost(&map, CollectiveKind::Allreduce, &large, 4096);
        assert!(cl > cs);
    }

    #[test]
    fn machine_model_roundtrips_through_serde() {
        let m = cluster_c();
        let json = serde_json::to_string(&m).unwrap();
        let back: MachineModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, m.name);
        assert_eq!(back.total_cores(), m.total_cores());
    }
}
