//! Deterministic noise model.
//!
//! Real clusters exhibit run-to-run variability — OS noise on compute,
//! contention on the network. The paper's prediction errors (0.06 %–6.4 %)
//! exist precisely because phase executions are *not* identical. We model
//! this with multiplicative noise drawn from a seeded ChaCha stream so that
//! every experiment is reproducible bit-for-bit while still exercising the
//! error paths of the prediction methodology.
//!
//! Each rank derives an independent substream from `(seed, rank)`, so rank
//! execution order cannot perturb the noise sequence.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the multiplicative noise applied to compute and
/// communication segments.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct JitterModel {
    /// Relative standard deviation of compute-segment noise (e.g. 0.01 =
    /// ±1 % typical).
    pub compute_sigma: f64,
    /// Relative standard deviation of communication-segment noise; network
    /// contention is usually burstier than OS noise.
    pub comm_sigma: f64,
    /// Stream seed. Two machines with different seeds produce independent
    /// noise; the same seed reproduces a run exactly.
    pub seed: u64,
}

impl JitterModel {
    /// A noiseless model, useful in unit tests that need exact times.
    pub fn none() -> JitterModel {
        JitterModel {
            compute_sigma: 0.0,
            comm_sigma: 0.0,
            seed: 0,
        }
    }

    /// Create the per-rank noise stream.
    pub fn stream(&self, rank: u32) -> JitterStream {
        // Mix rank into the seed with splitmix64-style constants so
        // adjacent ranks get unrelated streams.
        let mixed = self
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(rank as u64 + 1));
        JitterStream {
            rng: ChaCha8Rng::seed_from_u64(mixed),
            compute_sigma: self.compute_sigma,
            comm_sigma: self.comm_sigma,
        }
    }
}

/// A per-rank noise generator. Factors are always positive and average to
/// ~1, implemented as `1 + sigma * u` with `u` uniform in [-√3, √3] (unit
/// variance), clamped away from zero.
#[derive(Debug, Clone)]
pub struct JitterStream {
    rng: ChaCha8Rng,
    compute_sigma: f64,
    comm_sigma: f64,
}

impl JitterStream {
    fn factor(&mut self, sigma: f64) -> f64 {
        if sigma == 0.0 {
            return 1.0;
        }
        let u: f64 = self.rng.gen_range(-1.732_050_8..1.732_050_8);
        (1.0 + sigma * u).max(0.05)
    }

    /// Multiplicative factor for the next compute segment.
    pub fn compute_factor(&mut self) -> f64 {
        self.factor(self.compute_sigma)
    }

    /// Multiplicative factor for the next communication segment.
    pub fn comm_factor(&mut self) -> f64 {
        self.factor(self.comm_sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sigma_is_exactly_one() {
        let mut s = JitterModel::none().stream(0);
        for _ in 0..100 {
            assert_eq!(s.compute_factor(), 1.0);
            assert_eq!(s.comm_factor(), 1.0);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let j = JitterModel { compute_sigma: 0.02, comm_sigma: 0.05, seed: 42 };
        let a: Vec<f64> = {
            let mut s = j.stream(3);
            (0..50).map(|_| s.compute_factor()).collect()
        };
        let b: Vec<f64> = {
            let mut s = j.stream(3);
            (0..50).map(|_| s.compute_factor()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_ranks_different_streams() {
        let j = JitterModel { compute_sigma: 0.02, comm_sigma: 0.05, seed: 42 };
        let mut s0 = j.stream(0);
        let mut s1 = j.stream(1);
        let a: Vec<f64> = (0..20).map(|_| s0.compute_factor()).collect();
        let b: Vec<f64> = (0..20).map(|_| s1.compute_factor()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn factors_center_near_one() {
        let j = JitterModel { compute_sigma: 0.02, comm_sigma: 0.05, seed: 7 };
        let mut s = j.stream(0);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| s.compute_factor()).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {}", mean);
    }

    #[test]
    fn factors_stay_positive_even_with_huge_sigma() {
        let j = JitterModel { compute_sigma: 5.0, comm_sigma: 5.0, seed: 1 };
        let mut s = j.stream(0);
        for _ in 0..1000 {
            assert!(s.compute_factor() > 0.0);
            assert!(s.comm_factor() > 0.0);
        }
    }
}
