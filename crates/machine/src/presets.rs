//! The four clusters of the paper's Table 2, as machine models.
//!
//! | Cluster | Paper hardware | Cores | Network |
//! |---------|----------------|-------|---------|
//! | A | Dual-Core Intel Xeon 5150 2.66 GHz, L2 4 MB, 8 GB RAM | 128 | Gigabit Ethernet |
//! | B | 2× Quad-Core Intel Xeon E5430 2.66 GHz, L2 2×6 MB, 16 GB | 64 | Gigabit Ethernet |
//! | C | 4× Quad-Core Intel Xeon E7350 2.66 GHz, 48 GB | 256 | InfiniBand ConnectX |
//! | D | 16× Itanium Montvale SMP NUMA, 128 GB | 169 | InfiniBand 4×DDR 20 Gb/s |
//!
//! Absolute rates are calibrated to sustained (not peak) figures typical of
//! each micro-architecture; what matters for reproducing the paper's tables
//! is the *relative* ordering (per-core speed B > C > A > D, per-core memory
//! bandwidth A > B > D > C because cluster C packs 16 cores per node, and
//! InfiniBand ≫ Gigabit Ethernet). Cluster D is reported as 169 cores; we
//! model the nearest regular topology (6 NUMA nodes × 16 sockets × 2 cores
//! per Montvale die = 192) since the methodology never depends on the exact
//! odd count.

use crate::{ComputeModel, IsaKind, JitterModel, MachineModel, NetworkModel};

fn gige() -> NetworkModel {
    NetworkModel {
        latency: 45e-6,
        bandwidth: 112e6,
        per_msg_overhead: 3e-6,
    }
}

fn infiniband_connectx() -> NetworkModel {
    NetworkModel {
        latency: 1.8e-6,
        bandwidth: 1.4e9,
        per_msg_overhead: 0.8e-6,
    }
}

fn infiniband_4xddr() -> NetworkModel {
    NetworkModel {
        latency: 2.2e-6,
        bandwidth: 1.5e9,
        per_msg_overhead: 0.9e-6,
    }
}

fn shm() -> NetworkModel {
    NetworkModel {
        latency: 0.6e-6,
        bandwidth: 3.0e9,
        per_msg_overhead: 0.3e-6,
    }
}

fn default_jitter(seed: u64) -> JitterModel {
    JitterModel {
        compute_sigma: 0.008,
        comm_sigma: 0.03,
        seed,
    }
}

/// Cluster A: 32 nodes × 2 sockets × 2 cores (Xeon 5150), Gigabit Ethernet.
pub fn cluster_a() -> MachineModel {
    MachineModel {
        name: "cluster-A".to_string(),
        nodes: 32,
        sockets_per_node: 2,
        cores_per_socket: 2,
        compute: ComputeModel {
            flops_per_sec: 1.9e9,
            mem_bw: 2.8e9,
        },
        network: gige(),
        intra: shm(),
        jitter: default_jitter(0xA),
        isa: IsaKind::X86_64,
    }
}

/// Cluster B: 8 nodes × 2 sockets × 4 cores (Xeon E5430), Gigabit Ethernet.
pub fn cluster_b() -> MachineModel {
    MachineModel {
        name: "cluster-B".to_string(),
        nodes: 8,
        sockets_per_node: 2,
        cores_per_socket: 4,
        compute: ComputeModel {
            flops_per_sec: 2.3e9,
            mem_bw: 2.4e9,
        },
        network: gige(),
        intra: shm(),
        jitter: default_jitter(0xB),
        isa: IsaKind::X86_64,
    }
}

/// Cluster C: 16 nodes × 4 sockets × 4 cores (Xeon E7350), InfiniBand
/// ConnectX. 16 cores share each node's memory, so per-core bandwidth is
/// the lowest of the x86 clusters.
pub fn cluster_c() -> MachineModel {
    MachineModel {
        name: "cluster-C".to_string(),
        nodes: 16,
        sockets_per_node: 4,
        cores_per_socket: 4,
        compute: ComputeModel {
            flops_per_sec: 2.1e9,
            mem_bw: 1.6e9,
        },
        network: infiniband_connectx(),
        intra: shm(),
        jitter: default_jitter(0xC),
        isa: IsaKind::X86_64,
    }
}

/// Cluster D: Itanium Montvale NUMA, InfiniBand 4×DDR. Different ISA — a
/// signature built on clusters A–C cannot run here and must be
/// reconstructed from phases + weights (paper Appendix E / §7).
pub fn cluster_d() -> MachineModel {
    MachineModel {
        name: "cluster-D".to_string(),
        nodes: 6,
        sockets_per_node: 16,
        cores_per_socket: 2,
        compute: ComputeModel {
            flops_per_sec: 1.5e9,
            mem_bw: 2.0e9,
        },
        network: infiniband_4xddr(),
        intra: shm(),
        jitter: default_jitter(0xD),
        isa: IsaKind::Ia64,
    }
}

/// Look up a preset by short name (`"A"`, `"B"`, `"C"`, `"D"`, case
/// insensitive, with or without a `cluster-` prefix).
pub fn preset_by_name(name: &str) -> Option<MachineModel> {
    let short = name
        .trim()
        .trim_start_matches("cluster-")
        .trim_start_matches("cluster_")
        .to_ascii_uppercase();
    match short.as_str() {
        "A" => Some(cluster_a()),
        "B" => Some(cluster_b()),
        "C" => Some(cluster_c()),
        "D" => Some(cluster_d()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_lookup_accepts_variants() {
        assert_eq!(preset_by_name("A").unwrap().name, "cluster-A");
        assert_eq!(preset_by_name("cluster-b").unwrap().name, "cluster-B");
        assert_eq!(preset_by_name(" c ").unwrap().name, "cluster-C");
        assert!(preset_by_name("E").is_none());
    }

    #[test]
    fn per_core_speed_ordering_matches_microarchitectures() {
        // Harpertown (B) > Tigerton (C) > Woodcrest (A) > Montvale (D).
        let (a, b, c, d) = (cluster_a(), cluster_b(), cluster_c(), cluster_d());
        assert!(b.compute.flops_per_sec > c.compute.flops_per_sec);
        assert!(c.compute.flops_per_sec > a.compute.flops_per_sec);
        assert!(a.compute.flops_per_sec > d.compute.flops_per_sec);
    }

    #[test]
    fn cluster_c_has_lowest_per_core_bandwidth_of_x86() {
        let (a, b, c) = (cluster_a(), cluster_b(), cluster_c());
        assert!(c.compute.mem_bw < a.compute.mem_bw);
        assert!(c.compute.mem_bw < b.compute.mem_bw);
    }

    #[test]
    fn network_latency_ordering() {
        assert!(cluster_c().network.latency < cluster_a().network.latency / 10.0);
        assert!(cluster_d().network.latency < cluster_b().network.latency / 10.0);
    }

    #[test]
    fn jitter_seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> =
            [cluster_a(), cluster_b(), cluster_c(), cluster_d()]
                .iter()
                .map(|m| m.jitter.seed)
                .collect();
        assert_eq!(seeds.len(), 4);
    }
}
