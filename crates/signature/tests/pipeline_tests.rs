//! End-to-end pipeline tests: trace → model → phases → signature →
//! prediction, on a small iterative application.

use bytes::Bytes;
use pas2p_machine::{cluster_a, cluster_b, cluster_d, JitterModel, MachineModel, MappingPolicy, Work};
use pas2p_mpisim::{Mpi, ReduceOp};
use pas2p_model::pas2p_order;
use pas2p_phases::{extract_phases, PhaseTable, SimilarityConfig};
use pas2p_signature::{
    construct_signature, execute_signature, predict, rebuild_signature, run_plain, run_traced,
    ExecError, MpiApp, RankProgram, SignatureConfig,
};
use pas2p_trace::InstrumentationModel;

/// The canonical PAS2P-shaped test app: bcast prologue, iterative ring
/// exchange + allreduce, reduce epilogue.
struct RingApp {
    nprocs: u32,
    iters: u64,
    flops: f64,
}

impl MpiApp for RingApp {
    fn name(&self) -> String {
        "ring".into()
    }
    fn nprocs(&self) -> u32 {
        self.nprocs
    }
    fn make_rank(&self, rank: u32) -> Box<dyn RankProgram> {
        Box::new(RingRank {
            rank,
            n: self.nprocs,
            iters: self.iters,
            flops: self.flops,
            acc: 0.0,
        })
    }
}

struct RingRank {
    rank: u32,
    n: u32,
    iters: u64,
    flops: f64,
    acc: f64,
}

impl RankProgram for RingRank {
    fn prologue(&mut self, ctx: &mut dyn Mpi) {
        let data = (self.rank == 0).then(|| Bytes::from(vec![1u8; 64]));
        let got = ctx.bcast(0, data);
        self.acc = got.len() as f64;
    }
    fn steps(&self) -> u64 {
        self.iters
    }
    fn step(&mut self, _s: u64, ctx: &mut dyn Mpi) {
        let next = (self.rank + 1) % self.n;
        let prev = (self.rank + self.n - 1) % self.n;
        ctx.compute(Work::flops(self.flops));
        ctx.send(next, 1, &vec![2u8; 512]);
        let m = ctx.recv(Some(prev), Some(1));
        self.acc += m.data[0] as f64;
        let s = ctx.allreduce_f64(&[self.acc], ReduceOp::Sum);
        self.acc = s[0] / self.n as f64;
    }
    fn epilogue(&mut self, ctx: &mut dyn Mpi) {
        ctx.reduce_f64(0, &[self.acc], ReduceOp::Sum);
    }
    fn snapshot(&self) -> Vec<u8> {
        self.acc.to_le_bytes().to_vec()
    }
    fn restore(&mut self, bytes: &[u8]) {
        self.acc = f64::from_le_bytes(bytes.try_into().unwrap());
    }
}

fn machine_quiet(mut m: MachineModel) -> MachineModel {
    m.jitter = JitterModel::none();
    m
}

fn app() -> RingApp {
    RingApp {
        nprocs: 4,
        iters: 40,
        flops: 5e7,
    }
}

/// Run analysis on the base machine and return the phase table.
fn analyze(app: &dyn MpiApp, base: &MachineModel) -> PhaseTable {
    let (trace, _) = run_traced(app, base, MappingPolicy::Block, InstrumentationModel::free());
    let logical = pas2p_order(&trace);
    let analysis = extract_phases(&logical, &SimilarityConfig::default());
    PhaseTable::from_analysis(&analysis, 0.01, 1, 24)
}

#[test]
fn analysis_finds_the_iterative_phase() {
    let base = machine_quiet(cluster_a());
    let a = app();
    let (trace, _) = run_traced(&a, &base, MappingPolicy::Block, InstrumentationModel::free());
    let logical = pas2p_order(&trace);
    let analysis = extract_phases(&logical, &SimilarityConfig::default());
    assert!(analysis.total_phases() >= 1);
    assert!(analysis.total_phases() <= 6, "{} phases", analysis.total_phases());
    let dominant = analysis
        .phases
        .iter()
        .max_by_key(|p| p.weight)
        .unwrap();
    assert!(dominant.weight >= 35, "weight {}", dominant.weight);
    // Reconstructed AET tiles the trace.
    let err = (analysis.reconstructed_aet() - analysis.aet).abs() / analysis.aet;
    assert!(err < 0.05, "reconstruction error {}", err);
}

#[test]
fn construction_checkpoints_every_relevant_phase() {
    let base = machine_quiet(cluster_a());
    let a = app();
    let table = analyze(&a, &base);
    assert!(table.relevant_phases() >= 1);
    let (sig, stats) = construct_signature(
        &a,
        &table,
        &base,
        MappingPolicy::Block,
        SignatureConfig::default(),
    );
    assert_eq!(sig.phase_count(), table.relevant_phases());
    assert!(stats.sct > 0.0);
    assert!(sig.checkpoint_bytes() > 0 || sig.entries.is_empty());
    // Construction terminates early: its run must not exceed the full AET.
    let aet = run_plain(&a, &base, MappingPolicy::Block).makespan;
    assert!(
        stats.run_makespan <= aet * 1.05,
        "construction {} vs AET {}",
        stats.run_makespan,
        aet
    );
}

#[test]
fn signature_predicts_same_machine_accurately() {
    let base = machine_quiet(cluster_a());
    let a = app();
    let table = analyze(&a, &base);
    let (sig, _) = construct_signature(
        &a,
        &table,
        &base,
        MappingPolicy::Block,
        SignatureConfig::default(),
    );
    let report = predict::validate(&a, &sig, &base, MappingPolicy::Block).unwrap();
    assert!(
        report.pete_or_inf() < 10.0,
        "PETE {}% (PET {} vs AET {})",
        report.pete_or_inf(),
        report.prediction.pet,
        report.aet
    );
    assert!(report.prediction.set < report.aet, "SET must be << AET");
}

#[test]
fn signature_predicts_cross_machine() {
    // Build on cluster A, predict for cluster B — the Table 5 methodology.
    let base = machine_quiet(cluster_a());
    let target = machine_quiet(cluster_b());
    let a = app();
    let table = analyze(&a, &base);
    let (sig, _) = construct_signature(
        &a,
        &table,
        &base,
        MappingPolicy::Block,
        SignatureConfig::default(),
    );
    let report = predict::validate(&a, &sig, &target, MappingPolicy::Block).unwrap();
    assert!(
        report.pete_or_inf() < 10.0,
        "PETE {}% (PET {} vs AET {})",
        report.pete_or_inf(),
        report.prediction.pet,
        report.aet
    );
    // The two machines genuinely differ.
    let aet_base = run_plain(&a, &base, MappingPolicy::Block).makespan;
    assert!((report.aet - aet_base).abs() / aet_base > 0.02);
}

#[test]
fn prediction_tracks_machine_with_jitter() {
    // With realistic noise the error grows but stays within the paper's
    // band (average ~3%, worst 6.4%).
    let base = cluster_a();
    let target = cluster_b();
    let a = app();
    let table = analyze(&a, &base);
    let (sig, _) = construct_signature(
        &a,
        &table,
        &base,
        MappingPolicy::Block,
        SignatureConfig::default(),
    );
    let report = predict::validate(&a, &sig, &target, MappingPolicy::Block).unwrap();
    assert!(report.pete_or_inf() < 15.0, "PETE {}%", report.pete_or_inf());
}

#[test]
fn set_is_a_small_fraction_of_aet() {
    let base = machine_quiet(cluster_a());
    let a = RingApp {
        nprocs: 4,
        iters: 300,
        flops: 5e7,
    };
    let table = analyze(&a, &base);
    let (sig, _) = construct_signature(
        &a,
        &table,
        &base,
        MappingPolicy::Block,
        SignatureConfig::default(),
    );
    let report = predict::validate(&a, &sig, &base, MappingPolicy::Block).unwrap();
    assert!(
        report.set_vs_aet_percent < 20.0,
        "SET/AET = {}%",
        report.set_vs_aet_percent
    );
}

#[test]
fn isa_mismatch_is_rejected_and_rebuild_works() {
    let base = machine_quiet(cluster_a()); // x86-64
    let itanium = machine_quiet(cluster_d()); // IA-64
    let a = app();
    let table = analyze(&a, &base);
    let (sig, _) = construct_signature(
        &a,
        &table,
        &base,
        MappingPolicy::Block,
        SignatureConfig::default(),
    );
    let err = execute_signature(&a, &sig, &itanium, MappingPolicy::Block).unwrap_err();
    assert!(matches!(err, ExecError::IsaMismatch { .. }));
    assert!(err.to_string().contains("Appendix E"));

    // Appendix E: rebuild on the new ISA from the ported phase table.
    let (sig_d, _) = rebuild_signature(&a, &sig, &itanium, MappingPolicy::Block);
    let report = predict::validate(&a, &sig_d, &itanium, MappingPolicy::Block).unwrap();
    assert!(report.pete_or_inf() < 10.0, "PETE {}%", report.pete_or_inf());
}

#[test]
fn signature_serializes() {
    let base = machine_quiet(cluster_a());
    let a = app();
    let table = analyze(&a, &base);
    let (sig, _) = construct_signature(
        &a,
        &table,
        &base,
        MappingPolicy::Block,
        SignatureConfig::default(),
    );
    let json = serde_json::to_string(&sig).unwrap();
    let back: pas2p_signature::Signature = serde_json::from_str(&json).unwrap();
    assert_eq!(back.phase_count(), sig.phase_count());
    assert_eq!(back.nprocs, sig.nprocs);
}

#[test]
fn prediction_scales_with_weights() {
    // Doubling the iteration count should roughly double both AET and PET:
    // the signature measures the same phases, only the weights change.
    let base = machine_quiet(cluster_a());
    let short = RingApp { nprocs: 4, iters: 40, flops: 5e7 };
    let long = RingApp { nprocs: 4, iters: 80, flops: 5e7 };

    let pet_of = |a: &RingApp| {
        let table = analyze(a, &base);
        let (sig, _) = construct_signature(
            a,
            &table,
            &base,
            MappingPolicy::Block,
            SignatureConfig::default(),
        );
        execute_signature(a, &sig, &base, MappingPolicy::Block)
            .unwrap()
            .pet
    };
    let p1 = pet_of(&short);
    let p2 = pet_of(&long);
    let ratio = p2 / p1;
    assert!((1.6..2.4).contains(&ratio), "ratio {}", ratio);
}
