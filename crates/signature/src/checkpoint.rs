//! Coordinated checkpoints — the DMTCP substitute.
//!
//! DMTCP snapshots whole processes at a globally consistent point. Here a
//! checkpoint is the set of all ranks' [`RankProgram`](crate::RankProgram)
//! snapshots taken at the same step boundary, plus the metadata needed to
//! resume and to interpret the phase table's absolute event counts:
//! the boundary's step index, each rank's communication-event count, and
//! each rank's virtual-clock skew relative to the earliest rank (restored
//! on restart so the resumed execution keeps the original imbalance).

use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// Where a phase's measurement run begins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum CheckpointPoint {
    /// No usable checkpoint (the phase starts inside the prologue): the
    /// signature re-runs the application from its entry point.
    Start,
    /// Resume from a coordinated checkpoint.
    Data(CheckpointData),
}

/// A coordinated snapshot of every rank at one step boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointData {
    /// Number of main-loop steps completed at the boundary.
    pub step: u64,
    /// Per-rank communication-event counts at the boundary (absolute,
    /// from application start) — the offset added to a restarted run's
    /// counters when matching phase-table coordinates.
    pub base_counts: Vec<u64>,
    /// Per-rank virtual-clock skew at the boundary, relative to the
    /// earliest rank.
    pub clock_offsets: Vec<f64>,
    /// Per-rank serialized program state.
    pub states: Arc<Vec<Vec<u8>>>,
}

impl CheckpointData {
    /// Total serialized size in bytes (drives the modeled checkpoint
    /// write/restart cost).
    pub fn size_bytes(&self) -> u64 {
        self.states.iter().map(|s| s.len() as u64).sum()
    }
}

/// Outcome of one boundary round, delivered to every rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryOutcome {
    /// True once every phase-table row has a finalized checkpoint — the
    /// construction run can stop ("the signature terminates the execution
    /// because it is not necessary to continue", §3.4).
    pub all_finalized: bool,
}

/// Per-row targets the construction driver watches.
#[derive(Debug, Clone)]
pub(crate) struct RowTargets {
    pub ckpt_counts: Vec<u64>,
    pub end_counts: Vec<u64>,
}

struct SyncState {
    generation: u64,
    arrived: usize,
    counts: Vec<u64>,
    clocks: Vec<f64>,
    snaps: Vec<Vec<u8>>,
    /// Whether ranks should bring snapshots to the *next* round.
    snapshot_next: bool,
    candidates: Vec<Option<CheckpointData>>,
    finalized: Vec<bool>,
    outcome: BoundaryOutcome,
    step: u64,
}

/// The construction-time coordinator: a driver-level barrier at every step
/// boundary that maintains, per phase-table row, the latest checkpoint not
/// beyond the row's checkpoint coordinates. It lives *outside* the MPI
/// interface — like DMTCP's coordinator process — so it adds no
/// communication events and does not disturb the event counts the phase
/// table addresses.
pub(crate) struct CkptCoordinator {
    n: usize,
    rows: Vec<RowTargets>,
    state: Mutex<SyncState>,
    cv: Condvar,
}

impl CkptCoordinator {
    pub fn new(n: usize, rows: Vec<RowTargets>) -> CkptCoordinator {
        let nrows = rows.len();
        CkptCoordinator {
            n,
            rows,
            state: Mutex::new(SyncState {
                generation: 0,
                arrived: 0,
                counts: vec![0; n],
                clocks: vec![0.0; n],
                snaps: vec![Vec::new(); n],
                snapshot_next: true,
                candidates: vec![None; nrows],
                finalized: vec![false; nrows],
                outcome: BoundaryOutcome { all_finalized: nrows == 0 },
                step: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Whether ranks should serialize their state before arriving at the
    /// next boundary.
    pub fn wants_snapshot(&self) -> bool {
        self.state.lock().snapshot_next
    }

    /// Rank `rank` reaches a step boundary having completed `step` steps,
    /// with `comm_ops` events on its counter and virtual clock `clock`.
    /// `snapshot` must be `Some` when [`wants_snapshot`](Self::wants_snapshot)
    /// returned true before the call. Blocks until all ranks arrive;
    /// returns the round outcome.
    pub fn boundary(
        &self,
        rank: u32,
        step: u64,
        comm_ops: u64,
        clock: f64,
        snapshot: Option<Vec<u8>>,
    ) -> BoundaryOutcome {
        let mut st = self.state.lock();
        let my_gen = st.generation;
        st.counts[rank as usize] = comm_ops;
        st.clocks[rank as usize] = clock;
        if let Some(s) = snapshot {
            st.snaps[rank as usize] = s;
        }
        st.step = step;
        st.arrived += 1;

        if st.arrived == self.n {
            self.complete_round(&mut st);
            self.cv.notify_all();
            return st.outcome;
        }
        while st.generation == my_gen {
            self.cv.wait_for(&mut st, Duration::from_millis(50));
        }
        st.outcome
    }

    fn complete_round(&self, st: &mut SyncState) {
        let took_snaps = st.snapshot_next;
        let shared_states: Option<Arc<Vec<Vec<u8>>>> = if took_snaps {
            Some(Arc::new(std::mem::replace(
                &mut st.snaps,
                vec![Vec::new(); self.n],
            )))
        } else {
            None
        };
        let min_clock = st.clocks.iter().cloned().fold(f64::MAX, f64::min);
        let offsets: Vec<f64> = st.clocks.iter().map(|c| c - min_clock).collect();

        let mut any_updatable = false;
        for (r, row) in self.rows.iter().enumerate() {
            if st.finalized[r] {
                continue;
            }
            let within_ckpt_window = row
                .ckpt_counts
                .iter()
                .zip(&st.counts)
                .all(|(&target, &have)| have <= target);
            if within_ckpt_window {
                any_updatable = true;
                if let Some(states) = &shared_states {
                    st.candidates[r] = Some(CheckpointData {
                        step: st.step,
                        base_counts: st.counts.clone(),
                        clock_offsets: offsets.clone(),
                        states: states.clone(),
                    });
                }
            }
            let past_end = row
                .end_counts
                .iter()
                .zip(&st.counts)
                .all(|(&target, &have)| have >= target);
            if past_end {
                st.finalized[r] = true;
            }
        }
        st.snapshot_next = any_updatable;
        st.outcome = BoundaryOutcome {
            all_finalized: st.finalized.iter().all(|&f| f),
        };
        st.arrived = 0;
        st.generation += 1;
    }

    /// Consume the coordinator, returning per-row checkpoints
    /// ([`CheckpointPoint::Start`] where no boundary preceded the row's
    /// checkpoint coordinates).
    pub fn into_checkpoints(self) -> Vec<CheckpointPoint> {
        let st = self.state.into_inner();
        st.candidates
            .into_iter()
            .map(|c| match c {
                Some(data) => CheckpointPoint::Data(data),
                None => CheckpointPoint::Start,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coordinator(rows: Vec<RowTargets>) -> Arc<CkptCoordinator> {
        Arc::new(CkptCoordinator::new(2, rows))
    }

    /// Drive both ranks through boundaries sequentially on threads.
    fn run_boundaries(
        c: &Arc<CkptCoordinator>,
        // (step, [counts per rank], [clock per rank])
        boundaries: &[(u64, [u64; 2], [f64; 2])],
    ) -> Vec<BoundaryOutcome> {
        let mut outcomes = Vec::new();
        for &(step, counts, clocks) in boundaries {
            let want = c.wants_snapshot();
            let c0 = c.clone();
            let h = std::thread::spawn(move || {
                c0.boundary(
                    1,
                    step,
                    counts[1],
                    clocks[1],
                    want.then(|| vec![1u8, step as u8]),
                )
            });
            let o = c.boundary(0, step, counts[0], clocks[0], want.then(|| vec![0u8, step as u8]));
            let o2 = h.join().unwrap();
            assert_eq!(o, o2);
            outcomes.push(o);
        }
        outcomes
    }

    #[test]
    fn keeps_latest_checkpoint_before_target() {
        let c = coordinator(vec![RowTargets {
            ckpt_counts: vec![10, 10],
            end_counts: vec![20, 20],
        }]);
        let outs = run_boundaries(
            &c,
            &[
                (0, [0, 0], [0.0, 0.0]),
                (1, [4, 4], [1.0, 1.5]),
                (2, [8, 8], [2.0, 2.5]),
                (3, [12, 12], [3.0, 3.5]), // past ckpt window
                (4, [22, 22], [4.0, 4.5]), // past end → finalized
            ],
        );
        assert!(outs[4].all_finalized);
        let cps = match Arc::into_inner(c).unwrap().into_checkpoints().remove(0) {
            CheckpointPoint::Data(d) => d,
            CheckpointPoint::Start => panic!("expected data"),
        };
        assert_eq!(cps.step, 2, "latest boundary with counts <= 10");
        assert_eq!(cps.base_counts, vec![8, 8]);
        assert_eq!(cps.clock_offsets, vec![0.0, 0.5]);
        assert_eq!(&*cps.states, &vec![vec![0u8, 2], vec![1u8, 2]]);
    }

    #[test]
    fn phase_before_any_boundary_falls_back_to_start() {
        let c = coordinator(vec![RowTargets {
            // Checkpoint would need counts <= 1, but even the first
            // boundary has more events.
            ckpt_counts: vec![1, 1],
            end_counts: vec![3, 3],
        }]);
        run_boundaries(&c, &[(0, [5, 5], [0.0, 0.0])]);
        let cp = Arc::into_inner(c).unwrap().into_checkpoints().remove(0);
        assert!(matches!(cp, CheckpointPoint::Start));
    }

    #[test]
    fn snapshotting_stops_after_all_windows_pass() {
        let c = coordinator(vec![RowTargets {
            ckpt_counts: vec![4, 4],
            end_counts: vec![100, 100],
        }]);
        assert!(c.wants_snapshot());
        run_boundaries(&c, &[(0, [2, 2], [0.0, 0.0])]);
        assert!(c.wants_snapshot(), "still inside the window");
        run_boundaries(&c, &[(1, [6, 6], [0.0, 0.0])]);
        assert!(!c.wants_snapshot(), "window passed, stop serializing");
    }

    #[test]
    fn multiple_rows_finalize_independently() {
        let c = coordinator(vec![
            RowTargets { ckpt_counts: vec![2, 2], end_counts: vec![6, 6] },
            RowTargets { ckpt_counts: vec![10, 10], end_counts: vec![14, 14] },
        ]);
        let outs = run_boundaries(
            &c,
            &[
                (0, [0, 0], [0.0, 0.0]),
                (1, [4, 4], [0.0, 0.0]),
                (2, [8, 8], [0.0, 0.0]), // row 0 finalized (counts ≥ 6)
                (3, [16, 16], [0.0, 0.0]), // row 1 finalized
            ],
        );
        assert!(!outs[2].all_finalized);
        assert!(outs[3].all_finalized);
        let cps = Arc::into_inner(c).unwrap().into_checkpoints();
        match (&cps[0], &cps[1]) {
            (CheckpointPoint::Data(a), CheckpointPoint::Data(b)) => {
                assert_eq!(a.step, 0);
                assert_eq!(b.step, 2);
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn no_rows_is_immediately_finalized() {
        let c = coordinator(vec![]);
        let outs = run_boundaries(&c, &[(0, [0, 0], [0.0, 0.0])]);
        assert!(outs[0].all_finalized);
    }

    #[test]
    fn checkpoint_size_sums_states() {
        let data = CheckpointData {
            step: 0,
            base_counts: vec![0, 0],
            clock_offsets: vec![0.0, 0.0],
            states: Arc::new(vec![vec![0u8; 100], vec![0u8; 28]]),
        };
        assert_eq!(data.size_bytes(), 128);
    }
}
