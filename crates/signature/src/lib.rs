//! The parallel application signature (paper §3.4) and the prediction
//! methodology (§4).
//!
//! A signature is "the real code of the application" cut down to its
//! relevant phases: the paper re-runs the instrumented application with
//! the phase table loaded, takes a DMTCP coordinated checkpoint just
//! before each relevant phase's startpoint (early enough that the machine
//! warms up before measurement), and stops after the last checkpoint. To
//! *predict*, the signature restarts each checkpoint on the target
//! machine, measures the phase execution time between its startpoint and
//! endpoint events, terminates, and applies
//!
//! ```text
//! PET = Σᵢ PhaseETᵢ · Wᵢ          (Equation 1)
//! ```
//!
//! Our DMTCP substitute is the [`RankProgram`] contract: applications
//! expose coordinated snapshot/restore of their rank-local state at step
//! boundaries (which must be communication-quiescent, the standard
//! coordinated-checkpoint assumption). The construction driver re-runs the
//! application, keeps — for every phase-table row — the snapshot of the
//! **last** step boundary not beyond the row's checkpoint coordinates, and
//! terminates when every row is finalized. Execution restarts those
//! snapshots on the target machine model and watches per-rank
//! communication counters to timestamp the startpoint/endpoint crossings
//! (the phase table addresses phases by event counts, Fig 7).

#![forbid(unsafe_code)]

pub mod app;
pub mod checkpoint;
pub mod construct;
pub mod execute;
pub mod predict;

pub use app::{run_plain, run_traced, MpiApp, RankProgram};
pub use checkpoint::{CheckpointData, CheckpointPoint};
pub use construct::{construct_signature, ConstructionStats, Signature, SignatureConfig,
                    SignatureEntry};
pub use execute::{execute_signature, rebuild_signature, ExecError};
pub use predict::{PhaseMeasurement, Prediction, ValidationReport};
