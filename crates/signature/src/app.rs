//! The application contract and plain/traced run drivers.
//!
//! PAS2P treats applications as black boxes reachable through MPI
//! interposition plus DMTCP process checkpoints. In the reproduction the
//! equivalent contract is explicit: an application factory ([`MpiApp`])
//! creates one [`RankProgram`] per rank; a rank program has a prologue,
//! a sequence of main-loop steps, and an epilogue, and can snapshot /
//! restore its state at step boundaries. Step boundaries must be
//! communication-quiescent (no in-flight point-to-point messages crossing
//! the boundary) — the coordinated-checkpoint consistency condition DMTCP
//! obtains by draining the network.

use pas2p_machine::{MachineModel, MappingPolicy};
use pas2p_mpisim::{run_app, Mpi, RunReport, SimConfig};
use pas2p_trace::{InstrumentationModel, Trace, TraceCollector, Traced};
use std::sync::Arc;

/// Factory describing a parallel application at a fixed workload and
/// process count.
pub trait MpiApp: Send + Sync {
    /// Application name, e.g. `"CG"`.
    fn name(&self) -> String;
    /// Number of processes the application runs with.
    fn nprocs(&self) -> u32;
    /// Workload description (the paper's Table 4/6 "Workload" column).
    fn workload(&self) -> String {
        String::new()
    }
    /// Create the rank-local program for `rank`.
    fn make_rank(&self, rank: u32) -> Box<dyn RankProgram>;
}

/// One rank's executable program with checkpointable state.
pub trait RankProgram: Send {
    /// Setup and initial exchanges (runs once, before step 0).
    fn prologue(&mut self, ctx: &mut dyn Mpi);
    /// Number of main-loop steps.
    fn steps(&self) -> u64;
    /// Execute main-loop step `step` (0-based).
    fn step(&mut self, step: u64, ctx: &mut dyn Mpi);
    /// Final reductions/output (runs once, after the last step).
    fn epilogue(&mut self, ctx: &mut dyn Mpi);
    /// Serialize rank-local state at a step boundary.
    fn snapshot(&self) -> Vec<u8>;
    /// Restore state captured by [`RankProgram::snapshot`].
    fn restore(&mut self, bytes: &[u8]);
}

/// Drive a full rank program: prologue, all steps, epilogue.
pub fn drive_full(prog: &mut dyn RankProgram, ctx: &mut dyn Mpi) {
    prog.prologue(ctx);
    for s in 0..prog.steps() {
        prog.step(s, ctx);
    }
    prog.epilogue(ctx);
}

/// Execute the application without instrumentation and return the run
/// report; `report.makespan` is the application execution time (AET) on
/// `machine`.
pub fn run_plain(app: &dyn MpiApp, machine: &MachineModel, policy: MappingPolicy) -> RunReport {
    let cfg = SimConfig::new(machine.clone(), app.nprocs(), policy);
    run_app(&cfg, |ctx| {
        let mut prog = app.make_rank(ctx.rank());
        drive_full(prog.as_mut(), ctx);
    })
}

/// Execute the application under the `libpas2p` interposition layer and
/// return the collected trace plus the run report (whose makespan is the
/// paper's AET_PAS2P — AET inflated by instrumentation overhead).
pub fn run_traced(
    app: &dyn MpiApp,
    machine: &MachineModel,
    policy: MappingPolicy,
    model: InstrumentationModel,
) -> (Trace, RunReport) {
    let collector = Arc::new(TraceCollector::new(app.nprocs(), machine.name.clone(), model));
    let cfg = SimConfig::new(machine.clone(), app.nprocs(), policy);
    let col = collector.clone();
    let report = run_app(&cfg, move |ctx| {
        let rank = ctx.rank();
        let mut prog = app.make_rank(rank);
        let mut traced = Traced::new(ctx, &col);
        drive_full(prog.as_mut(), &mut traced);
        traced.finish();
    });
    let trace = Arc::into_inner(collector)
        .expect("collector still shared after run")
        .into_trace();
    (trace, report)
}

#[cfg(test)]
pub(crate) mod testutil {
    //! A small iterative test application shared by the signature tests:
    //! a ring exchange with an allreduce per step, a broadcast prologue
    //! and a reduce epilogue — the canonical shape PAS2P targets.

    use super::*;
    use bytes::Bytes;
    use pas2p_machine::Work;
    use pas2p_mpisim::ReduceOp;

    pub struct RingApp {
        pub nprocs: u32,
        pub iters: u64,
        pub flops_per_step: f64,
        pub msg_bytes: usize,
    }

    impl MpiApp for RingApp {
        fn name(&self) -> String {
            "test-ring".into()
        }
        fn nprocs(&self) -> u32 {
            self.nprocs
        }
        fn workload(&self) -> String {
            format!("{} iterations", self.iters)
        }
        fn make_rank(&self, rank: u32) -> Box<dyn RankProgram> {
            Box::new(RingRank {
                rank,
                nprocs: self.nprocs,
                iters: self.iters,
                flops: self.flops_per_step,
                msg_bytes: self.msg_bytes,
                acc: 0.0,
                done_steps: 0,
            })
        }
    }

    pub struct RingRank {
        rank: u32,
        nprocs: u32,
        iters: u64,
        flops: f64,
        msg_bytes: usize,
        pub acc: f64,
        pub done_steps: u64,
    }

    impl RankProgram for RingRank {
        fn prologue(&mut self, ctx: &mut dyn Mpi) {
            let data = if self.rank == 0 {
                Some(Bytes::from(vec![7u8; 16]))
            } else {
                None
            };
            let got = ctx.bcast(0, data);
            self.acc = got[0] as f64;
        }

        fn steps(&self) -> u64 {
            self.iters
        }

        fn step(&mut self, _step: u64, ctx: &mut dyn Mpi) {
            let next = (self.rank + 1) % self.nprocs;
            let prev = (self.rank + self.nprocs - 1) % self.nprocs;
            ctx.compute(Work::flops(self.flops));
            ctx.send(next, 1, &vec![1u8; self.msg_bytes]);
            let m = ctx.recv(Some(prev), Some(1));
            self.acc += m.data[0] as f64;
            let s = ctx.allreduce_f64(&[self.acc], ReduceOp::Sum);
            self.acc = s[0] / self.nprocs as f64;
            self.done_steps += 1;
        }

        fn epilogue(&mut self, ctx: &mut dyn Mpi) {
            ctx.reduce_f64(0, &[self.acc], ReduceOp::Sum);
        }

        fn snapshot(&self) -> Vec<u8> {
            let mut v = Vec::with_capacity(16);
            v.extend_from_slice(&self.acc.to_le_bytes());
            v.extend_from_slice(&self.done_steps.to_le_bytes());
            v
        }

        fn restore(&mut self, bytes: &[u8]) {
            self.acc = f64::from_le_bytes(bytes[0..8].try_into().unwrap());
            self.done_steps = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::RingApp;
    use super::*;
    use pas2p_machine::{cluster_a, JitterModel};

    fn quiet() -> MachineModel {
        let mut m = cluster_a();
        m.jitter = JitterModel::none();
        m
    }

    fn app() -> RingApp {
        RingApp {
            nprocs: 4,
            iters: 10,
            flops_per_step: 1e7,
            msg_bytes: 128,
        }
    }

    #[test]
    fn run_plain_executes_all_steps() {
        let r = run_plain(&app(), &quiet(), MappingPolicy::Block);
        assert_eq!(r.nprocs, 4);
        assert!(r.makespan > 0.0);
        assert!(!r.aborted);
        // 10 steps × 4 ranks × 1 p2p message
        assert_eq!(r.total_msgs, 40);
    }

    #[test]
    fn run_traced_collects_matching_event_counts() {
        let (trace, report) = run_traced(
            &app(),
            &quiet(),
            MappingPolicy::Block,
            InstrumentationModel::free(),
        );
        assert_eq!(trace.nprocs, 4);
        trace.validate().unwrap();
        // prologue bcast + 10×(send,recv,allreduce) + epilogue reduce
        for p in &trace.procs {
            assert_eq!(p.events.len(), 1 + 30 + 1);
        }
        assert!((trace.elapsed() - report.makespan).abs() < 1e-9);
    }

    #[test]
    fn snapshot_restore_roundtrips() {
        let a = app();
        let p = a.make_rank(2);
        let snap0 = p.snapshot();
        let mut q = a.make_rank(2);
        q.restore(&snap0);
        assert_eq!(q.snapshot(), snap0);
    }

    #[test]
    fn traced_run_is_slower_than_plain_with_overhead() {
        let plain = run_plain(&app(), &quiet(), MappingPolicy::Block);
        let (_, traced) = run_traced(
            &app(),
            &quiet(),
            MappingPolicy::Block,
            InstrumentationModel { per_event_seconds: 1e-3 },
        );
        assert!(traced.makespan > plain.makespan);
    }
}
