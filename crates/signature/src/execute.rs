//! Signature execution on a target machine (paper §4, Figs 9b–11).
//!
//! "Run the signature means executing its constituent phases": each
//! checkpoint restarts on the target, the machine warms up, measurement
//! runs from the phase's startpoint to its endpoint events, and the
//! checkpointed execution is terminated. Finally Equation (1) turns the
//! measured PhaseETs and the weights into the predicted execution time.

use crate::app::{drive_full, MpiApp};
use crate::checkpoint::CheckpointPoint;
use crate::construct::{construct_signature, Signature};
use crate::predict::{PhaseMeasurement, Prediction};
use parking_lot::Mutex;
use pas2p_machine::{IsaKind, MachineModel, MappingPolicy};
use pas2p_mpisim::{run_app, Counters, HarnessAction, Mpi, SimConfig, SimHarness};
use std::sync::Arc;
use std::time::Instant;

/// Errors from signature execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The signature's checkpoints were built for a different ISA; it
    /// cannot be ported (paper §7). Use [`rebuild_signature`].
    IsaMismatch {
        /// ISA the signature was built on.
        signature: IsaKind,
        /// ISA of the requested target.
        target: IsaKind,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::IsaMismatch { signature, target } => write!(
                f,
                "signature built for {} cannot run on {} — reconstruct it from the phase table \
                 (paper Appendix E)",
                signature, target
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// Watches a restarted run's per-rank event counters and timestamps the
/// startpoint/endpoint crossings of every measurement window of one
/// phase; aborts the run once every rank passed the last window's
/// endpoint. The PhaseET is the mean over the windows of
/// `max(end crossings) − max(start crossings)` — the same global-boundary
/// convention the analysis stage uses.
struct MeasureHarness {
    base: Vec<u64>,
    windows: Vec<pas2p_phases::MeasureWindow>,
    state: Mutex<MeasureState>,
}

struct MeasureState {
    /// Per-rank index of the next window to cross.
    win_idx: Vec<usize>,
    /// `start_clock[w][rank]` — clock at the rank's start crossing of
    /// window `w`.
    start_clock: Vec<Vec<Option<f64>>>,
    end_clock: Vec<Vec<Option<f64>>>,
    /// Ranks that have not yet finished their last window.
    remaining: usize,
}

impl MeasureHarness {
    fn new(base: Vec<u64>, windows: Vec<pas2p_phases::MeasureWindow>) -> MeasureHarness {
        let n = base.len();
        let w = windows.len();
        assert!(w > 0, "phase row without measurement windows");
        MeasureHarness {
            base,
            windows,
            state: Mutex::new(MeasureState {
                win_idx: vec![0; n],
                start_clock: vec![vec![None; n]; w],
                end_clock: vec![vec![None; n]; w],
                remaining: n,
            }),
        }
    }

    /// Advance rank `r`'s window pointer given its absolute event count.
    /// Returns `AbortAll` when the last rank finishes its last window.
    fn advance(&self, r: usize, abs: u64, clock: f64, st: &mut MeasureState) -> HarnessAction {
        while st.win_idx[r] < self.windows.len() {
            let w = st.win_idx[r];
            let win = &self.windows[w];
            if st.start_clock[w][r].is_none() && abs >= win.start_counts[r] {
                st.start_clock[w][r] = Some(clock);
            }
            if abs >= win.end_counts[r] {
                if st.end_clock[w][r].is_none() {
                    st.end_clock[w][r] = Some(clock);
                }
                st.win_idx[r] += 1;
                if st.win_idx[r] == self.windows.len() {
                    st.remaining -= 1;
                    if st.remaining == 0 {
                        return HarnessAction::AbortAll;
                    }
                }
            } else {
                break;
            }
        }
        HarnessAction::Continue
    }

    /// Record crossings already satisfied at the checkpoint boundary (a
    /// phase can begin right where the restart begins).
    fn prime(&self, rank: u32, clock: f64) {
        let r = rank as usize;
        let mut st = self.state.lock();
        let _ = self.advance(r, self.base[r], clock, &mut st);
    }

    /// Mean measured phase execution time over the windows.
    fn phase_et(&self) -> f64 {
        let st = self.state.lock();
        let mut sum = 0.0;
        let mut n = 0usize;
        for w in 0..self.windows.len() {
            let start = st.start_clock[w].iter().filter_map(|c| *c).fold(0.0f64, f64::max);
            let end = st.end_clock[w].iter().filter_map(|c| *c).fold(0.0f64, f64::max);
            if end > 0.0 || start > 0.0 {
                sum += (end - start).max(0.0);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    fn all_measured(&self) -> bool {
        self.state.lock().remaining == 0
    }
}

impl SimHarness for MeasureHarness {
    fn on_comm_event(&self, rank: u32, counters: &Counters, clock: f64) -> HarnessAction {
        let r = rank as usize;
        let abs = self.base[r] + counters.comm_ops();
        // Fast path: nothing to record before the first window's start.
        {
            let st = self.state.lock();
            if st.win_idx[r] >= self.windows.len() {
                return HarnessAction::Continue;
            }
            let w = st.win_idx[r];
            if st.start_clock[w][r].is_some() {
                // fall through to full handling below
            } else if abs < self.windows[w].start_counts[r] {
                return HarnessAction::Continue;
            }
        }
        let mut st = self.state.lock();
        self.advance(r, abs, clock, &mut st)
    }

    fn on_rank_done(&self, rank: u32, clock: f64) {
        // A rank may finish its program exactly at (or before) the last
        // window's end; close its measurement so the run can conclude.
        let r = rank as usize;
        let mut st = self.state.lock();
        if st.win_idx[r] < self.windows.len() {
            for w in st.win_idx[r]..self.windows.len() {
                if st.start_clock[w][r].is_none() {
                    st.start_clock[w][r] = Some(clock);
                }
                if st.end_clock[w][r].is_none() {
                    st.end_clock[w][r] = Some(clock);
                }
            }
            st.win_idx[r] = self.windows.len();
            st.remaining -= 1;
        }
    }
}

/// Execute the signature on `target`: restart every checkpoint, measure
/// its phase, and apply Equation (1).
pub fn execute_signature(
    app: &dyn MpiApp,
    signature: &Signature,
    target: &MachineModel,
    policy: MappingPolicy,
) -> Result<Prediction, ExecError> {
    if signature.isa != target.isa {
        return Err(ExecError::IsaMismatch {
            signature: signature.isa,
            target: target.isa,
        });
    }
    let started = Instant::now();
    let cfg = signature.config;
    let n = signature.nprocs;
    let mut measurements = Vec::with_capacity(signature.entries.len());

    for entry in &signature.entries {
        type Restored = (Vec<u64>, Vec<f64>, u64, Option<Arc<Vec<Vec<u8>>>>);
        let (base, offsets, resume_step, states): Restored = match &entry.checkpoint {
                CheckpointPoint::Start => (vec![0; n as usize], vec![0.0; n as usize], 0, None),
                CheckpointPoint::Data(d) => (
                    d.base_counts.clone(),
                    d.clock_offsets.clone(),
                    d.step,
                    Some(d.states.clone()),
                ),
            };
        let restart_cost = cfg.restart_latency
            + states
                .as_ref()
                .map(|s| s.iter().map(|b| b.len() as u64).sum::<u64>())
                .unwrap_or(0) as f64
                / cfg.disk_bandwidth;

        let harness = Arc::new(MeasureHarness::new(base, entry.row.windows.clone()));
        let sim = SimConfig::new(target.clone(), n, policy.clone())
            .with_harness(harness.clone());
        let harness_ref = harness.clone();
        let offsets = Arc::new(offsets);
        let states_ref = states.clone();
        let report = run_app(&sim, move |ctx| {
            let rank = ctx.rank();
            let mut prog = app.make_rank(rank);
            match &states_ref {
                Some(states) => {
                    // Restart: restore state, re-apply the boundary's
                    // clock skew, resume the main loop.
                    prog.restore(&states[rank as usize]);
                    ctx.elapse(offsets[rank as usize]);
                    harness_ref.prime(rank, ctx.now());
                    for s in resume_step..prog.steps() {
                        prog.step(s, ctx);
                    }
                    prog.epilogue(ctx);
                }
                None => {
                    harness_ref.prime(rank, ctx.now());
                    drive_full(prog.as_mut(), ctx);
                }
            }
        });
        debug_assert!(
            harness.all_measured() || !report.aborted,
            "aborted without completing measurement"
        );

        if pas2p_obs::tracing_enabled() {
            pas2p_obs::instant(
                "host.signature",
                "phase measured",
                vec![
                    ("phase", entry.row.phase_id.to_string()),
                    ("weight", entry.row.weight.to_string()),
                    ("phase_et_virtual_s", format!("{:.6}", harness.phase_et())),
                    ("restart_cost_s", format!("{:.6}", restart_cost)),
                ],
            );
        }
        measurements.push(PhaseMeasurement {
            phase_id: entry.row.phase_id,
            weight: entry.row.weight,
            phase_et: harness.phase_et(),
            measured_span: report.makespan,
            restart_cost,
        });
    }

    if pas2p_obs::enabled() {
        pas2p_obs::counter("signature.restarts").add(signature.entries.len() as u64);
        pas2p_obs::counter("signature.phase_measurements").add(measurements.len() as u64);
        let phase_et = pas2p_obs::histogram("signature.phase_et_us");
        for m in &measurements {
            phase_et.record((m.phase_et * 1e6) as u64);
        }
    }
    let mut prediction = Prediction::from_measurements(
        signature.app_name.clone(),
        signature.base_machine.clone(),
        target.name.clone(),
        n,
        measurements,
        started.elapsed().as_secs_f64(),
    );
    // A prediction is only as trustworthy as the trace it rests on.
    prediction.confidence = signature.confidence;
    Ok(prediction)
}

/// Rebuild a signature on a machine with a different ISA, "using the
/// information from the phases and weight extracted in the base machine"
/// (paper §7): the phase table ports, the checkpoints are recreated by a
/// construction run on the new machine.
pub fn rebuild_signature(
    app: &dyn MpiApp,
    signature: &Signature,
    new_base: &MachineModel,
    policy: MappingPolicy,
) -> (Signature, crate::construct::ConstructionStats) {
    construct_signature(app, &signature.table, new_base, policy, signature.config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_phases::MeasureWindow;

    fn win(start: &[u64], end: &[u64]) -> MeasureWindow {
        MeasureWindow {
            start_counts: start.to_vec(),
            end_counts: end.to_vec(),
        }
    }

    fn feed(h: &MeasureHarness, rank: u32, abs_counts: &[(u64, f64)]) -> bool {
        // Feed absolute counts by synthesizing counter deltas; returns
        // true if an abort was requested.
        let mut aborted = false;
        for &(abs, clock) in abs_counts {
            let c = Counters {
                sends: abs - h.base[rank as usize],
                recvs: 0,
                colls: 0,
            };
            if h.on_comm_event(rank, &c, clock) == HarnessAction::AbortAll {
                aborted = true;
            }
        }
        aborted
    }

    #[test]
    fn single_window_measures_max_minus_max() {
        let h = MeasureHarness::new(vec![0, 0], vec![win(&[2, 3], &[4, 5])]);
        // rank 0 crosses start at t=1.0, end at t=2.0
        feed(&h, 0, &[(1, 0.5), (2, 1.0), (4, 2.0)]);
        // rank 1 crosses start at t=1.5, end at t=3.0 (last → abort)
        let aborted = feed(&h, 1, &[(3, 1.5), (5, 3.0)]);
        assert!(aborted);
        assert!(h.all_measured());
        // max(start)=1.5, max(end)=3.0
        assert!((h.phase_et() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn multi_window_averages() {
        let h = MeasureHarness::new(
            vec![0],
            vec![win(&[0], &[2]), win(&[4], &[6])],
        );
        // window 1: start 0 (primed), end at t=1; window 2: start t=3,
        // end t=5 → ETs 1.0 and 2.0 → mean 1.5.
        h.prime(0, 0.0);
        let aborted = feed(&h, 0, &[(2, 1.0), (4, 3.0), (6, 5.0)]);
        assert!(aborted);
        assert!((h.phase_et() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn one_event_can_cross_multiple_windows() {
        // A rank whose counter jumps past several windows at once (e.g. a
        // rank with no events inside the phase) must close them all.
        let h = MeasureHarness::new(
            vec![0],
            vec![win(&[1], &[2]), win(&[3], &[4])],
        );
        let aborted = feed(&h, 0, &[(10, 7.0)]);
        assert!(aborted);
        assert!(h.all_measured());
        // Both windows collapse to the same instant: ET 0.
        assert_eq!(h.phase_et(), 0.0);
    }

    #[test]
    fn base_offsets_are_applied() {
        let h = MeasureHarness::new(vec![100], vec![win(&[102], &[104])]);
        // counters are relative to the restart; abs = base + ops.
        let c1 = Counters { sends: 2, recvs: 0, colls: 0 };
        assert_eq!(h.on_comm_event(0, &c1, 1.0), HarnessAction::Continue);
        let c2 = Counters { sends: 4, recvs: 0, colls: 0 };
        assert_eq!(h.on_comm_event(0, &c2, 2.0), HarnessAction::AbortAll);
        assert!((h.phase_et() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_done_closes_remaining_windows() {
        let h = MeasureHarness::new(vec![0, 0], vec![win(&[1, 1], &[2, 2])]);
        feed(&h, 0, &[(2, 1.0)]);
        assert!(!h.all_measured());
        h.on_rank_done(1, 4.0);
        assert!(h.all_measured());
        // rank 1's crossings default to its final clock.
        assert!((h.phase_et() - (4.0 - 4.0)).abs() < 1e-9);
    }

    #[test]
    fn prime_records_boundary_aligned_starts() {
        // Phase starts exactly at the checkpoint: base == start counts.
        let h = MeasureHarness::new(vec![5], vec![win(&[5], &[7])]);
        h.prime(0, 0.25);
        let aborted = feed(&h, 0, &[(7, 1.25)]);
        assert!(aborted);
        assert!((h.phase_et() - 1.0).abs() < 1e-12);
    }
}
