//! Signature construction (paper §3.4, Figs 8–9a).
//!
//! "To construct the signature, we re-run the application loading the
//! Libpas2p library and the phase table to instrument and detect where the
//! phases occur" — at each relevant phase's startpoint a coordinated
//! checkpoint is created, and "after completing the checkpoint for the
//! last phase, the signature terminates the execution because it is not
//! necessary to continue".

use crate::app::MpiApp;
use crate::checkpoint::{CheckpointPoint, CkptCoordinator, RowTargets};
use pas2p_machine::{IsaKind, MachineModel, MappingPolicy};
use pas2p_mpisim::{run_app, Mpi, SimConfig};
use pas2p_phases::{PhaseRow, PhaseTable};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Tunables of signature construction and execution.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SignatureConfig {
    /// Fraction of AET a phase must contribute to be relevant (paper: 1 %).
    pub relevance_threshold: f64,
    /// Minimum occurrences to skip after restart before measurement
    /// (machine warm-up; paper places the checkpoint before the phase
    /// start and lets the phase occur "a series of times").
    pub warmup_occurrences: usize,
    /// Maximum consecutive occurrences measured and averaged per phase.
    pub measure_occurrences: usize,
    /// Modeled disk bandwidth for checkpoint writes/restores, bytes/s.
    pub disk_bandwidth: f64,
    /// Fixed cost of creating one coordinated checkpoint, seconds.
    pub ckpt_latency: f64,
    /// Fixed cost of restarting one checkpoint, seconds.
    pub restart_latency: f64,
}

impl Default for SignatureConfig {
    fn default() -> Self {
        SignatureConfig {
            relevance_threshold: 0.01,
            warmup_occurrences: 1,
            measure_occurrences: 24,
            disk_bandwidth: 200e6,
            ckpt_latency: 0.08,
            restart_latency: 0.12,
        }
    }
}

/// One relevant phase inside a signature: its table row plus the
/// checkpoint that resumes execution just before it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SignatureEntry {
    /// The phase-table row (weights, coordinates, base PhaseET).
    pub row: PhaseRow,
    /// Where the measurement run starts.
    pub checkpoint: CheckpointPoint,
}

/// The parallel application signature: executable phase measurements plus
/// the metadata to predict from them. "The signature is the real code of
/// the application": executing it resumes the actual program state and
/// runs the actual kernel on the target machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Signature {
    /// Application name.
    pub app_name: String,
    /// Workload description used during analysis.
    pub workload: String,
    /// Number of processes.
    pub nprocs: u32,
    /// Machine the signature was constructed on.
    pub base_machine: String,
    /// ISA of the base machine — checkpoints only restart on the same ISA
    /// (paper §7 / Appendix E).
    pub isa: IsaKind,
    /// The phase table the signature was built from.
    pub table: PhaseTable,
    /// One entry per relevant phase.
    pub entries: Vec<SignatureEntry>,
    /// Configuration used to build (and later execute) the signature.
    pub config: SignatureConfig,
    /// Confidence inherited from the analysis the signature was built
    /// from: `Degraded` when the trace went through the recovering
    /// ingest path and lost data on the way.
    #[serde(default)]
    pub confidence: pas2p_trace::Confidence,
}

impl Signature {
    /// Total checkpoint payload in bytes.
    pub fn checkpoint_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| match &e.checkpoint {
                CheckpointPoint::Data(d) => d.size_bytes(),
                CheckpointPoint::Start => 0,
            })
            .sum()
    }

    /// Number of relevant phases in the signature.
    pub fn phase_count(&self) -> usize {
        self.entries.len()
    }
}

/// Timing of the construction run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ConstructionStats {
    /// The paper's SCT: virtual time of the (early-terminated)
    /// construction re-run plus modeled checkpoint write costs.
    pub sct: f64,
    /// Virtual makespan of the construction run alone.
    pub run_makespan: f64,
    /// Modeled checkpoint write cost, seconds.
    pub ckpt_write_seconds: f64,
    /// Total checkpoint bytes written.
    pub ckpt_bytes: u64,
    /// Host wall-clock seconds construction took.
    pub wall_seconds: f64,
}

/// Re-run the application on `machine` with `table` loaded, creating the
/// coordinated checkpoints, and assemble the signature.
pub fn construct_signature(
    app: &dyn MpiApp,
    table: &PhaseTable,
    machine: &MachineModel,
    policy: MappingPolicy,
    config: SignatureConfig,
) -> (Signature, ConstructionStats) {
    let started = Instant::now();
    let n = app.nprocs();
    assert_eq!(n, table.nprocs, "phase table is for a different run size");

    // Rows without measure windows (possible in a deserialized table;
    // `pas2p-check` flags them as SIG-ROW-001) have no endpoint to detect,
    // so they are skipped rather than panicking construction.
    let rows: Vec<RowTargets> = table
        .rows
        .iter()
        .filter_map(|r| match r.end_counts() {
            Some(end) => Some(RowTargets {
                ckpt_counts: r.ckpt_counts.clone(),
                end_counts: end.to_vec(),
            }),
            None => {
                if pas2p_obs::enabled() {
                    pas2p_obs::counter("signature.rows_skipped_empty").inc();
                }
                None
            }
        })
        .collect();
    let coord = Arc::new(CkptCoordinator::new(n as usize, rows));

    let sim = SimConfig::new(machine.clone(), n, policy);
    let coord_ref = coord.clone();
    let report = run_app(&sim, move |ctx| {
        let rank = ctx.rank();
        let mut prog = app.make_rank(rank);
        prog.prologue(ctx);

        let boundary = |prog: &dyn crate::app::RankProgram, ctx: &mut pas2p_mpisim::RankCtx, step: u64| {
            let snap = coord_ref.wants_snapshot().then(|| prog.snapshot());
            coord_ref
                .boundary(rank, step, ctx.counters().comm_ops(), ctx.now(), snap)
                .all_finalized
        };

        if boundary(prog.as_ref(), ctx, 0) {
            return;
        }
        let steps = prog.steps();
        for s in 0..steps {
            prog.step(s, ctx);
            if boundary(prog.as_ref(), ctx, s + 1) {
                return;
            }
        }
        prog.epilogue(ctx);
        // Final boundary so trailing rows finalize on complete traces.
        boundary(prog.as_ref(), ctx, steps + 1);
    });

    let checkpoints = Arc::into_inner(coord)
        .expect("coordinator still shared")
        .into_checkpoints();
    let entries: Vec<SignatureEntry> = table
        .rows
        .iter()
        .cloned()
        .zip(checkpoints)
        .map(|(row, checkpoint)| SignatureEntry { row, checkpoint })
        .collect();

    let signature = Signature {
        app_name: app.name(),
        workload: app.workload(),
        nprocs: n,
        base_machine: machine.name.clone(),
        isa: machine.isa,
        table: table.clone(),
        entries,
        config,
        confidence: pas2p_trace::Confidence::Full,
    };

    let ckpt_bytes = signature.checkpoint_bytes();
    let ckpt_write_seconds = signature.entries.len() as f64 * config.ckpt_latency
        + ckpt_bytes as f64 / config.disk_bandwidth;
    let stats = ConstructionStats {
        sct: report.makespan + ckpt_write_seconds,
        run_makespan: report.makespan,
        ckpt_write_seconds,
        ckpt_bytes,
        wall_seconds: started.elapsed().as_secs_f64(),
    };
    if pas2p_obs::enabled() {
        pas2p_obs::counter("signature.construct_runs").inc();
        pas2p_obs::counter("signature.checkpoints").add(signature.entries.len() as u64);
        pas2p_obs::counter("signature.checkpoint_bytes").add(ckpt_bytes);
        pas2p_obs::gauge("signature.sct_seconds").set(stats.sct);
    }
    if pas2p_obs::tracing_enabled() {
        pas2p_obs::instant(
            "host.signature",
            "signature constructed",
            vec![
                ("app", signature.app_name.clone()),
                ("checkpoints", signature.entries.len().to_string()),
                ("ckpt_bytes", ckpt_bytes.to_string()),
                ("sct_virtual_s", format!("{:.6}", stats.sct)),
            ],
        );
    }
    (signature, stats)
}
