//! The prediction model (paper §4, Equation 1) and the experimental
//! validation block (Fig 12).

use crate::app::{run_plain, MpiApp};
use crate::construct::Signature;
use crate::execute::{execute_signature, ExecError};
use pas2p_machine::{MachineModel, MappingPolicy};
use serde::{Deserialize, Serialize};

/// One phase's measurement on the target machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseMeasurement {
    /// Phase identifier.
    pub phase_id: u32,
    /// Weight (repetition count) from the analysis.
    pub weight: u64,
    /// Measured phase execution time on the target, seconds.
    pub phase_et: f64,
    /// Virtual time the measurement run took (restart → abort).
    pub measured_span: f64,
    /// Modeled checkpoint restart cost, seconds.
    pub restart_cost: f64,
}

impl PhaseMeasurement {
    /// This phase's contribution to the prediction: `PhaseET × W`.
    pub fn contribution(&self) -> f64 {
        self.phase_et * self.weight as f64
    }
}

/// The signature's output on a target machine: the predicted execution
/// time (PET) and the signature execution time (SET).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Prediction {
    /// Application name.
    pub app: String,
    /// Machine the signature was built on.
    pub base_machine: String,
    /// Machine the signature executed on.
    pub target_machine: String,
    /// Number of processes.
    pub nprocs: u32,
    /// Per-phase measurements.
    pub measurements: Vec<PhaseMeasurement>,
    /// Predicted execution time: `Σ PhaseETᵢ · Wᵢ` (Equation 1).
    pub pet: f64,
    /// Signature execution time: restart costs plus measurement runs.
    pub set: f64,
    /// Host wall-clock seconds the signature execution took.
    pub wall_seconds: f64,
    /// Observability snapshot taken when the prediction was produced
    /// (attached by the pipeline layer; absent when observability is off).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics: Option<pas2p_obs::MetricsSnapshot>,
    /// Confidence inherited from the signature this prediction executed:
    /// `Degraded` predictions rest on a partially recovered trace.
    #[serde(default)]
    pub confidence: pas2p_trace::Confidence,
}

impl Prediction {
    /// Assemble a prediction from phase measurements, applying Equation 1.
    pub fn from_measurements(
        app: String,
        base_machine: String,
        target_machine: String,
        nprocs: u32,
        measurements: Vec<PhaseMeasurement>,
        wall_seconds: f64,
    ) -> Prediction {
        let pet = measurements.iter().map(|m| m.contribution()).sum();
        let set = measurements
            .iter()
            .map(|m| m.restart_cost + m.measured_span)
            .sum();
        if pas2p_obs::enabled() {
            pas2p_obs::gauge("predict.pet_seconds").set(pet);
            pas2p_obs::gauge("predict.set_seconds").set(set);
        }
        Prediction {
            app,
            base_machine,
            target_machine,
            nprocs,
            measurements,
            pet,
            set,
            wall_seconds,
            metrics: None,
            confidence: pas2p_trace::Confidence::Full,
        }
    }
}

/// The paper's experimental-validation block (Fig 12): execute the
/// signature for the PET, execute the whole application for the AET, and
/// report the prediction error.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValidationReport {
    /// The signature's prediction on the target.
    pub prediction: Prediction,
    /// Measured application execution time on the target, seconds.
    pub aet: f64,
    /// Prediction execution-time error: `100·|PET − AET| / AET`
    /// (Table 5/7 "PETE(%)"). `None` when the AET is non-positive or not
    /// finite — a degenerate run has no meaningful relative error, and
    /// reporting 0 % would read as a perfect prediction.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub pete_percent: Option<f64>,
    /// `100·SET / AET` (Table 5/7 "SET versus AET").
    pub set_vs_aet_percent: f64,
}

impl ValidationReport {
    /// Prediction accuracy in percent (100 − PETE); `None` when PETE is
    /// undefined.
    pub fn accuracy_percent(&self) -> Option<f64> {
        self.pete_percent.map(|p| 100.0 - p)
    }

    /// PETE as a plain number for thresholds and table output: `+∞` when
    /// undefined, so a degenerate run can never pass an accuracy check.
    pub fn pete_or_inf(&self) -> f64 {
        self.pete_percent.unwrap_or(f64::INFINITY)
    }
}

/// Run the full validation methodology against one target machine:
/// signature → PET, whole application → AET, then PETE.
pub fn validate(
    app: &dyn MpiApp,
    signature: &Signature,
    target: &MachineModel,
    policy: MappingPolicy,
) -> Result<ValidationReport, ExecError> {
    let prediction = execute_signature(app, signature, target, policy.clone())?;
    let aet = run_plain(app, target, policy).makespan;
    Ok(report_from(prediction, aet))
}

/// Build a validation report from an existing prediction and a measured
/// AET (lets benches reuse an AET across configurations).
pub fn report_from(prediction: Prediction, aet: f64) -> ValidationReport {
    let pete_percent = if aet > 0.0 && aet.is_finite() {
        Some(100.0 * (prediction.pet - aet).abs() / aet)
    } else {
        None
    };
    let set_vs_aet_percent = if aet > 0.0 && aet.is_finite() {
        100.0 * prediction.set / aet
    } else {
        0.0
    };
    if pas2p_obs::enabled() {
        pas2p_obs::gauge("predict.aet_seconds").set(aet);
        if let Some(pete) = pete_percent {
            pas2p_obs::gauge("predict.pete_percent").set(pete);
        }
    }
    ValidationReport {
        prediction,
        aet,
        pete_percent,
        set_vs_aet_percent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(id: u32, weight: u64, et: f64) -> PhaseMeasurement {
        PhaseMeasurement {
            phase_id: id,
            weight,
            phase_et: et,
            measured_span: et * 2.0,
            restart_cost: 0.5,
        }
    }

    #[test]
    fn equation_one_sums_weighted_phase_times() {
        let p = Prediction::from_measurements(
            "x".into(),
            "A".into(),
            "B".into(),
            4,
            vec![meas(0, 100, 0.01), meas(1, 50, 0.02)],
            0.0,
        );
        assert!((p.pet - (100.0 * 0.01 + 50.0 * 0.02)).abs() < 1e-12);
        assert!((p.set - (0.5 + 0.02 + 0.5 + 0.04)).abs() < 1e-12);
    }

    #[test]
    fn pete_measures_relative_error() {
        let p = Prediction::from_measurements(
            "x".into(),
            "A".into(),
            "B".into(),
            4,
            vec![meas(0, 100, 0.01)], // PET = 1.0
            0.0,
        );
        let r = report_from(p, 1.25);
        assert!((r.pete_percent.unwrap() - 20.0).abs() < 1e-9);
        assert!((r.accuracy_percent().unwrap() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn set_vs_aet_ratio() {
        let p = Prediction::from_measurements(
            "x".into(),
            "A".into(),
            "B".into(),
            4,
            vec![meas(0, 1, 1.0)], // SET = 0.5 + 2.0
            0.0,
        );
        let r = report_from(p, 100.0);
        assert!((r.set_vs_aet_percent - 2.5).abs() < 1e-9);
    }

    #[test]
    fn zero_aet_is_handled() {
        // A degenerate AET must NOT read as a perfect prediction: PETE is
        // undefined, not 0 %.
        let p = Prediction::from_measurements("x".into(), "A".into(), "B".into(), 1, vec![], 0.0);
        let r = report_from(p, 0.0);
        assert_eq!(r.pete_percent, None);
        assert_eq!(r.accuracy_percent(), None);
        assert_eq!(r.pete_or_inf(), f64::INFINITY);
        assert_eq!(r.set_vs_aet_percent, 0.0);
    }

    #[test]
    fn non_finite_aet_is_undefined_too() {
        let p = |aet| {
            let pred = Prediction::from_measurements(
                "x".into(),
                "A".into(),
                "B".into(),
                1,
                vec![],
                0.0,
            );
            report_from(pred, aet)
        };
        assert_eq!(p(f64::NAN).pete_percent, None);
        assert_eq!(p(f64::INFINITY).pete_percent, None);
        assert_eq!(p(-1.0).pete_percent, None);
    }
}
