//! Leveled structured logger with scoped spans.
//!
//! One global [`Logger`] per process. Human-readable lines go to stderr
//! (`[LEVEL target] msg key=value ...`); when a file sink is attached
//! each record is additionally appended as one JSON object per line.
//!
//! Configuration:
//! * `PAS2P_LOG` — `off|error|warn|info|debug|trace` (default `warn`)
//! * `PAS2P_LOG_FILE` — path for the JSON-lines sink
//! * programmatic: [`Logger::set_level`] / [`Logger::set_file`]
//!   (the CLI's `--log-level` / `--log-file` flags call these)

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Log verbosity, ordered: a record is emitted when its level is at or
/// below the logger's configured level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Off = 0,
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
    Trace = 5,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(Level::Off),
            "error" | "err" | "1" => Some(Level::Error),
            "warn" | "warning" | "2" => Some(Level::Warn),
            "info" | "3" => Some(Level::Info),
            "debug" | "4" => Some(Level::Debug),
            "trace" | "5" => Some(Level::Trace),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Off,
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            4 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Process-wide logger. Obtain it with [`logger()`].
pub struct Logger {
    level: AtomicU8,
    sink: Mutex<Option<BufWriter<File>>>,
}

impl Logger {
    fn from_env() -> Logger {
        let level = std::env::var("PAS2P_LOG")
            .ok()
            .and_then(|s| Level::parse(&s))
            .unwrap_or(Level::Warn);
        let logger = Logger {
            level: AtomicU8::new(level as u8),
            sink: Mutex::new(None),
        };
        if let Ok(path) = std::env::var("PAS2P_LOG_FILE") {
            // Env-driven init has nowhere to report errors; ignore failure.
            let _ = logger.set_file(&path);
        }
        logger
    }

    pub fn level(&self) -> Level {
        Level::from_u8(self.level.load(Ordering::Relaxed))
    }

    pub fn set_level(&self, level: Level) {
        self.level.store(level as u8, Ordering::Relaxed);
    }

    /// Attach (or replace) the JSON-lines file sink.
    pub fn set_file(&self, path: &str) -> std::io::Result<()> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        *self.sink.lock().unwrap() = Some(BufWriter::new(file));
        Ok(())
    }

    pub fn enabled(&self, level: Level) -> bool {
        level != Level::Off && level as u8 <= self.level.load(Ordering::Relaxed)
    }

    /// Emit one record. `fields` are structured key/value pairs rendered
    /// as `key=value` on stderr and as a JSON object in the file sink.
    pub fn log(&self, level: Level, target: &str, msg: &str, fields: &[(&str, String)]) {
        if !self.enabled(level) {
            return;
        }
        let mut line = format!("[{:5} {}] {}", level.as_str(), target, msg);
        for (k, v) in fields {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            line.push_str(v);
        }
        eprintln!("{line}");

        let mut sink = self.sink.lock().unwrap();
        if let Some(w) = sink.as_mut() {
            let ts_us = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0);
            let mut json = String::with_capacity(96);
            json.push_str("{\"ts_us\":");
            json.push_str(&ts_us.to_string());
            json.push_str(",\"level\":\"");
            json.push_str(level.as_str());
            json.push_str("\",\"target\":\"");
            escape_json_into(&mut json, target);
            json.push_str("\",\"msg\":\"");
            escape_json_into(&mut json, msg);
            json.push('"');
            for (k, v) in fields {
                json.push_str(",\"");
                escape_json_into(&mut json, k);
                json.push_str("\":\"");
                escape_json_into(&mut json, v);
                json.push('"');
            }
            json.push('}');
            let _ = writeln!(w, "{json}");
            let _ = w.flush();
        }
    }
}

fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

static LOGGER: OnceLock<Logger> = OnceLock::new();

/// The process-wide logger (initialized from `PAS2P_LOG`/`PAS2P_LOG_FILE`
/// on first use).
pub fn logger() -> &'static Logger {
    LOGGER.get_or_init(Logger::from_env)
}

/// Convenience: emit a record through the global logger.
pub fn log(level: Level, target: &str, msg: &str, fields: &[(&str, String)]) {
    logger().log(level, target, msg, fields);
}

/// Convenience: would a record at `level` currently be emitted?
pub fn log_enabled(level: Level) -> bool {
    logger().enabled(level)
}

/// Scoped span: logs `enter <name>` at Debug on creation and
/// `exit <name> elapsed_us=...` on drop. Inert (no timestamps taken,
/// nothing logged) when Debug is not enabled at creation time.
pub struct Span {
    target: &'static str,
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    pub fn new(target: &'static str, name: &'static str) -> Span {
        let active = logger().enabled(Level::Debug);
        if active {
            logger().log(
                Level::Debug,
                target,
                "enter",
                &[("span", name.to_string())],
            );
        }
        Span {
            target,
            name,
            start: if active { Some(Instant::now()) } else { None },
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let us = start.elapsed().as_micros() as u64;
            logger().log(
                Level::Debug,
                self.target,
                "exit",
                &[
                    ("span", self.name.to_string()),
                    ("elapsed_us", us.to_string()),
                ],
            );
        }
    }
}

/// Open a scoped span on the global logger.
pub fn span(target: &'static str, name: &'static str) -> Span {
    Span::new(target, name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_roundtrip() {
        for l in [
            Level::Off,
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("bogus"), None);
    }

    #[test]
    fn level_ordering_gates_records() {
        let logger = Logger {
            level: AtomicU8::new(Level::Info as u8),
            sink: Mutex::new(None),
        };
        assert!(logger.enabled(Level::Error));
        assert!(logger.enabled(Level::Info));
        assert!(!logger.enabled(Level::Debug));
        logger.set_level(Level::Off);
        assert!(!logger.enabled(Level::Error));
    }

    #[test]
    fn json_escaping() {
        let mut out = String::new();
        escape_json_into(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }
}
