//! Lock-free metric primitives: counters, gauges, and streaming
//! log₂-bucketed histograms.
//!
//! All three are plain atomics so hot paths (the simulator's send/recv
//! loop) can record without taking a lock. Histograms trade exactness
//! for O(1) recording: each value lands in a power-of-two bucket and
//! percentiles are reconstructed from the bucket midpoints, clamped to
//! the exact observed `[min, max]`.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic event counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins floating-point gauge (stored as f64 bit patterns).
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: bucket 0 holds zeros, bucket `b` (1..=64)
/// holds values whose highest set bit is `b-1`, i.e. `[2^(b-1), 2^b)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Midpoint of a bucket's value range, used to reconstruct percentiles.
fn bucket_midpoint(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        let lo = 1u64 << (b - 1);
        lo + lo / 2
    }
}

/// Streaming histogram over `u64` samples with exact count/sum/min/max
/// and approximate (log₂-bucketed) percentiles.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// Percentile estimate for `q` in `[0, 1]`: the midpoint of the
    /// bucket containing the q-th sample, clamped to the exact observed
    /// `[min, max]`. Returns 0 when empty.
    fn percentile(&self, q: f64, count: u64, min: u64, max: u64) -> u64 {
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (b, slot) in self.buckets.iter().enumerate() {
            seen += slot.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_midpoint(b).clamp(min, max);
            }
        }
        max
    }

    pub fn summary(&self) -> HistogramSummary {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return HistogramSummary::default();
        }
        let sum = self.sum.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            sum,
            min,
            max,
            mean: sum as f64 / count as f64,
            p50: self.percentile(0.50, count, min, max),
            p95: self.percentile(0.95, count, min, max),
            p99: self.percentile(0.99, count, min, max),
        }
    }
}

/// Point-in-time summary of a [`Histogram`], as embedded in
/// [`crate::MetricsSnapshot`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub mean: f64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);
        g.reset();
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_midpoint(0), 0);
        assert_eq!(bucket_midpoint(1), 1);
        assert_eq!(bucket_midpoint(3), 6);
    }

    #[test]
    fn empty_histogram_summary_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn single_value_summary() {
        let h = Histogram::new();
        h.record(42);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 42);
        assert_eq!(s.min, 42);
        assert_eq!(s.max, 42);
        assert_eq!(s.mean, 42.0);
        // A lone sample pins every percentile to it via the clamp.
        assert_eq!(s.p50, 42);
        assert_eq!(s.p99, 42);
    }

    #[test]
    fn all_zero_samples() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(0);
        }
        let s = h.summary();
        assert_eq!(s.count, 10);
        assert_eq!((s.min, s.max, s.p50, s.p95, s.p99), (0, 0, 0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn percentiles_are_ordered_and_bounded() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
        assert!(s.p50 >= s.min && s.p99 <= s.max);
        // p50 of 1..=1000 must land in the bucket containing 500.
        assert!(s.p50 >= 256 && s.p50 < 1000);
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(7);
        h.reset();
        assert_eq!(h.summary(), HistogramSummary::default());
        h.record(3);
        let s = h.summary();
        assert_eq!((s.count, s.min, s.max), (1, 3, 3));
    }
}
