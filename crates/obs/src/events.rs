//! Event tracing: timestamped spans, instants and flow arrows.
//!
//! Where [`crate::metrics`] answers *how much* and the stage profiler
//! answers *how long*, this module answers **when**: it records a stream
//! of timestamped [`Event`]s — span begin/end pairs with parent ids,
//! point-in-time instants, and flow arrows linking an emitter to a
//! consumer — that [`crate::export`] turns into a Chrome Trace Event /
//! Perfetto-compatible JSON timeline.
//!
//! # Recording path
//!
//! Each thread records into its own bounded buffer (a thread-local ring
//! of [`RING_CAP`] events): the hot path is one relaxed atomic load on
//! the tracing gate plus a thread-local `Vec` push — no locks, no
//! cross-thread traffic. A thread's buffer drains into the process-wide
//! sink when it fills (amortized, one mutex acquisition per
//! [`RING_CAP`] events), on an explicit [`flush()`], and when the
//! thread exits. Worker threads spawned under `std::thread::scope`
//! must call [`flush()`] as the last thing in their closure: the scope
//! unblocks as soon as the closure returns, *before* the thread's TLS
//! destructors run, so the exit-time drain races any subsequent
//! [`take()`] on the spawning thread. The `Drop` drain remains as a
//! backstop for detached threads. [`take()`] flushes the calling
//! thread and drains the sink.
//!
//! Tracing is **disabled by default** and gated separately from metric
//! collection ([`set_tracing`] / `PAS2P_TRACE=1`): the disabled path is
//! a single relaxed atomic load, guarded by the same `obs_overhead`
//! bench as the metrics hooks. Virtual clocks are never touched —
//! timestamps here are host wall-clock nanoseconds since the first
//! event of the process; the *simulated* timeline is reconstructed from
//! the recorded trace's virtual times at export, not sampled live.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Capacity of a per-thread event buffer; filling it triggers a drain
/// into the global sink.
pub const RING_CAP: usize = 1 << 14;

/// What one [`Event`] marks on the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventPhase {
    /// A span opened (paired with [`EventPhase::End`] by `id`).
    Begin,
    /// A span closed.
    End,
    /// A point in time with no duration.
    Instant,
    /// A flow arrow leaves this thread (paired by `id`).
    FlowStart,
    /// A flow arrow lands on this thread.
    FlowEnd,
}

/// One timestamped tracing event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Span or marker name (e.g. `"extract_phases"`, `"retry"`).
    pub name: String,
    /// Dot-separated category; everything recorded live is under
    /// `host.*` (wall-clock domain), e.g. `host.stage`, `host.worker`.
    pub cat: &'static str,
    /// What this event marks.
    pub ph: EventPhase,
    /// Host nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Recording thread (stable per-thread ordinal, not the OS id).
    pub tid: u64,
    /// Span/flow pairing id (0 = none).
    pub id: u64,
    /// Enclosing span's id at record time (0 = top level).
    pub parent: u64,
    /// Free-form annotations rendered into the exporter's `args`.
    pub args: Vec<(&'static str, String)>,
}

/// Tracing gate plus the shared drain target.
struct TraceState {
    enabled: AtomicBool,
    sink: Mutex<Vec<Event>>,
    dropped: AtomicU64,
    next_id: AtomicU64,
    next_tid: AtomicU64,
    epoch: Instant,
}

static STATE: OnceLock<TraceState> = OnceLock::new();

fn state() -> &'static TraceState {
    STATE.get_or_init(|| {
        let enabled = std::env::var("PAS2P_TRACE")
            .map(|v| matches!(v.trim(), "1" | "true" | "on" | "yes"))
            .unwrap_or(false);
        TraceState {
            enabled: AtomicBool::new(enabled),
            sink: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            next_tid: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    })
}

/// Is event tracing on? One `OnceLock` read plus one relaxed atomic
/// load — the hot-path gate mirroring [`crate::enabled`].
#[inline]
pub fn tracing_enabled() -> bool {
    state().enabled.load(Ordering::Relaxed)
}

/// Turn event tracing on or off (also via `PAS2P_TRACE=1`).
pub fn set_tracing(on: bool) {
    state().enabled.store(on, Ordering::Relaxed);
}

fn now_ns() -> u64 {
    state().epoch.elapsed().as_nanos() as u64
}

fn next_id() -> u64 {
    state().next_id.fetch_add(1, Ordering::Relaxed)
}

/// Per-thread recording state: the bounded event buffer plus the open
/// span stack feeding parent ids. Drained into the sink on overflow and
/// on thread exit (the `Drop` impl).
struct ThreadRing {
    tid: u64,
    buf: Vec<Event>,
    open_spans: Vec<u64>,
}

impl ThreadRing {
    fn new() -> ThreadRing {
        ThreadRing {
            tid: state().next_tid.fetch_add(1, Ordering::Relaxed),
            buf: Vec::with_capacity(256),
            open_spans: Vec::new(),
        }
    }

    fn push(&mut self, ev: Event) {
        self.buf.push(ev);
        if self.buf.len() >= RING_CAP {
            self.drain();
        }
    }

    fn drain(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        match state().sink.lock() {
            Ok(mut sink) => sink.append(&mut self.buf),
            Err(_) => {
                // A poisoned sink (a panic mid-drain elsewhere) loses
                // this batch; account for it instead of unwinding.
                state()
                    .dropped
                    .fetch_add(self.buf.len() as u64, Ordering::Relaxed);
                self.buf.clear();
            }
        }
    }
}

impl Drop for ThreadRing {
    fn drop(&mut self) {
        self.drain();
    }
}

thread_local! {
    static RING: RefCell<ThreadRing> = RefCell::new(ThreadRing::new());
}

fn record(
    name: String,
    cat: &'static str,
    ph: EventPhase,
    id: u64,
    args: Vec<(&'static str, String)>,
) {
    RING.with(|ring| {
        let mut ring = ring.borrow_mut();
        let parent = *ring.open_spans.last().unwrap_or(&0);
        let ev = Event {
            name,
            cat,
            ph,
            ts_ns: now_ns(),
            tid: ring.tid,
            id,
            parent,
            args,
        };
        ring.push(ev);
    });
}

/// Record an instant event (a point marker on the current thread's
/// track). No-op when tracing is off.
pub fn instant(cat: &'static str, name: &str, args: Vec<(&'static str, String)>) {
    if tracing_enabled() {
        record(name.to_string(), cat, EventPhase::Instant, 0, args);
    }
}

/// Record the start of a flow arrow (e.g. a batch job handed to a
/// deadline runner); pair it with [`flow_end`] using the same id.
/// Returns the flow id (freshly allocated when `id` is `None`), or 0
/// when tracing is off.
pub fn flow_start(cat: &'static str, name: &str, id: Option<u64>) -> u64 {
    if !tracing_enabled() {
        return 0;
    }
    let id = id.unwrap_or_else(next_id);
    record(name.to_string(), cat, EventPhase::FlowStart, id, Vec::new());
    id
}

/// Record the landing end of a flow arrow started with [`flow_start`].
pub fn flow_end(cat: &'static str, name: &str, id: u64) {
    if tracing_enabled() && id != 0 {
        record(name.to_string(), cat, EventPhase::FlowEnd, id, Vec::new());
    }
}

/// Open a traced span on the current thread. The returned guard closes
/// the span when dropped; nested spans record their parent's id. When
/// tracing is off the guard is inert (one atomic load, no allocation).
pub fn trace_span(cat: &'static str, name: &str) -> EventSpan {
    if !tracing_enabled() {
        return EventSpan { id: 0, cat: "" };
    }
    let id = next_id();
    record(name.to_string(), cat, EventPhase::Begin, id, Vec::new());
    RING.with(|ring| ring.borrow_mut().open_spans.push(id));
    EventSpan { id, cat }
}

/// Guard for a span opened with [`trace_span`]; closing (dropping) it
/// emits the matching end event.
pub struct EventSpan {
    id: u64,
    cat: &'static str,
}

impl EventSpan {
    /// Attach annotations to the span's end event (e.g. item counts or
    /// an outcome classification known only at completion).
    pub fn finish_with(self, args: Vec<(&'static str, String)>) {
        self.close(args);
    }

    fn close(self, args: Vec<(&'static str, String)>) {
        if self.id == 0 {
            return;
        }
        RING.with(|ring| {
            let mut ring = ring.borrow_mut();
            // Pop through anything left open by a panic inside the span.
            while let Some(top) = ring.open_spans.pop() {
                if top == self.id {
                    break;
                }
            }
            let parent = *ring.open_spans.last().unwrap_or(&0);
            let ev = Event {
                name: String::new(),
                cat: self.cat,
                ph: EventPhase::End,
                ts_ns: now_ns(),
                tid: ring.tid,
                id: self.id,
                parent,
                args,
            };
            ring.push(ev);
        });
        std::mem::forget(self);
    }
}

impl Drop for EventSpan {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        let span = EventSpan {
            id: self.id,
            cat: self.cat,
        };
        self.id = 0;
        span.close(Vec::new());
    }
}

/// Push the calling thread's buffered events into the process-wide
/// sink. Call this at the end of a scoped worker's closure — the scope
/// unblocks before TLS destructors run, so relying on the exit-time
/// drain would race a [`take()`] on the spawning thread.
pub fn flush() {
    RING.with(|ring| ring.borrow_mut().drain());
}

/// Throw away the calling thread's buffered events — and forget its
/// open spans — without draining them into the sink. Returns how many
/// events were discarded.
///
/// This is for abandoned runner threads: when a batch job is cancelled
/// after its deadline expired, the partial timeline it recorded must
/// not land in the report, but the exit-time `Drop` drain would publish
/// it anyway (possibly long after the report was sealed). Events the
/// thread already drained into the sink — a full ring, an earlier
/// [`flush`] — are out of reach and stay.
pub fn discard_local() -> usize {
    RING.with(|ring| {
        let mut ring = ring.borrow_mut();
        let n = ring.buf.len();
        ring.buf.clear();
        ring.open_spans.clear();
        n
    })
}

/// Flush the calling thread's buffer and drain every event recorded so
/// far (other live threads' ring contents arrive at their next
/// [`flush`], overflow or exit). Events are returned in timestamp
/// order.
pub fn take() -> Vec<Event> {
    flush();
    let mut events = match state().sink.lock() {
        Ok(mut sink) => std::mem::take(&mut *sink),
        Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
    };
    events.sort_by(|a, b| a.ts_ns.cmp(&b.ts_ns).then(a.tid.cmp(&b.tid)));
    events
}

/// Discard everything recorded so far (calling thread plus sink).
pub fn clear() {
    let _ = take();
}

/// Events lost to a poisoned sink since process start.
pub fn dropped() -> u64 {
    state().dropped.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tracing gate and sink are process-global; every test that
    /// records serializes on this lock.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = guard();
        set_tracing(false);
        clear();
        instant("host.test", "quiet", Vec::new());
        let s = trace_span("host.test", "quiet_span");
        drop(s);
        assert!(take().is_empty());
    }

    #[test]
    fn spans_nest_and_carry_parents() {
        let _g = guard();
        set_tracing(true);
        clear();
        let outer = trace_span("host.test", "outer");
        let inner = trace_span("host.test", "inner");
        instant("host.test", "mark", vec![("k", "v".into())]);
        drop(inner);
        outer.finish_with(vec![("items", "3".into())]);
        set_tracing(false);

        let events = take();
        assert_eq!(events.len(), 5);
        let begin_outer = &events[0];
        let begin_inner = &events[1];
        let mark = &events[2];
        assert_eq!(begin_outer.ph, EventPhase::Begin);
        assert_eq!(begin_outer.parent, 0);
        assert_eq!(begin_inner.parent, begin_outer.id);
        assert_eq!(mark.ph, EventPhase::Instant);
        assert_eq!(mark.parent, begin_inner.id);
        let end_outer = events.last().unwrap();
        assert_eq!(end_outer.ph, EventPhase::End);
        assert_eq!(end_outer.id, begin_outer.id);
        assert_eq!(end_outer.args, vec![("items", "3".to_string())]);
    }

    #[test]
    fn scoped_worker_events_arrive_after_flush() {
        let _g = guard();
        set_tracing(true);
        clear();
        std::thread::scope(|s| {
            s.spawn(|| {
                let span = trace_span("host.worker", "w0");
                drop(span);
                flush();
            });
        });
        set_tracing(false);
        let events = take();
        assert_eq!(events.len(), 2, "flushed worker events must be in the sink");
        assert_eq!(events[0].cat, "host.worker");
    }

    #[test]
    fn joined_thread_events_arrive_via_exit_drain() {
        let _g = guard();
        set_tracing(true);
        clear();
        // A real join (unlike a scope) returns only after the thread has
        // fully exited, TLS destructors included — the Drop backstop is
        // reliable here.
        std::thread::spawn(|| {
            let span = trace_span("host.worker", "w1");
            drop(span);
        })
        .join()
        .expect("worker thread");
        set_tracing(false);
        let events = take();
        assert_eq!(events.len(), 2, "exit drain must land before join returns");
        assert_eq!(events[0].name, "w1");
    }

    #[test]
    fn discard_local_suppresses_the_exit_drain() {
        let _g = guard();
        set_tracing(true);
        clear();
        std::thread::spawn(|| {
            let span = trace_span("host.worker", "abandoned");
            drop(span);
            let discarded = discard_local();
            assert_eq!(discarded, 2, "begin + end were buffered");
        })
        .join()
        .expect("worker thread");
        set_tracing(false);
        assert!(
            take().is_empty(),
            "discarded events must never reach the sink"
        );
    }

    #[test]
    fn flows_pair_by_id() {
        let _g = guard();
        set_tracing(true);
        clear();
        let id = flow_start("host.batch", "handoff", None);
        assert_ne!(id, 0);
        flow_end("host.batch", "handoff", id);
        set_tracing(false);
        let events = take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].ph, EventPhase::FlowStart);
        assert_eq!(events[1].ph, EventPhase::FlowEnd);
        assert_eq!(events[0].id, events[1].id);
    }

    #[test]
    fn ring_overflow_drains_to_sink() {
        let _g = guard();
        set_tracing(true);
        clear();
        for i in 0..(RING_CAP + 10) {
            instant("host.test", if i % 2 == 0 { "a" } else { "b" }, Vec::new());
        }
        set_tracing(false);
        let events = take();
        assert_eq!(events.len(), RING_CAP + 10);
    }
}
