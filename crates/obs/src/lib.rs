//! Observability for the PAS2P reproduction.
//!
//! PAS2P is itself a measurement tool: the paper's Table 8 (tracefile
//! size, analysis time, phase counts) and Table 9 (instrumentation
//! overhead) *observe the observer*. This crate is the first-class home
//! for that self-observation — every pipeline layer feeds one shared,
//! process-wide instrumentation path instead of ad-hoc `Instant` math:
//!
//! * **[`logger`]** — a leveled, structured logger with scoped [`Span`]s.
//!   Human-readable lines go to stderr; JSON lines optionally to a file.
//!   Configured via the `PAS2P_LOG` / `PAS2P_LOG_FILE` environment
//!   variables or programmatically (`pas2p-cli --log-level/--log-file`).
//! * **[`metrics`]** — a thread-safe registry of atomic [`Counter`]s,
//!   [`Gauge`]s and streaming log₂-bucketed [`Histogram`]s
//!   (min/max/mean/p50/p95/p99), fed by the simulator runtime, the trace
//!   recorder, the model builder, phase extraction and the signature
//!   machinery.
//! * **[`registry`]** — the global [`Registry`] tying it together: stage
//!   profiles ([`StageGuard`] wall-clock + events/sec per pipeline stage)
//!   and the serializable [`MetricsSnapshot`] embedded into
//!   `Analysis`/`Prediction` JSON and written by `pas2p-cli --metrics`.
//! * **[`events`]** — timeline tracing: per-thread ring buffers of
//!   timestamped span/instant/flow events (gated separately via
//!   [`set_tracing`] / `PAS2P_TRACE=1`), feeding…
//! * **[`export`]** — …the Chrome Trace Event / Perfetto-compatible
//!   [`ChromeTrace`] JSON exporter behind `pas2p-cli timeline` and the
//!   `--trace-out` flags.
//!
//! # Cost model
//!
//! Observation must never perturb the simulation (virtual clocks are
//! untouched by every hook), and the *disabled* path must be a near-no-op
//! on the hot simulation loop. The contract at every hot call site is:
//!
//! ```ignore
//! if pas2p_obs::enabled() {            // one relaxed atomic load
//!     HIST.get_or_init(|| pas2p_obs::histogram("mpisim.msg_bytes"))
//!         .record(len);                // lock-free atomics when enabled
//! }
//! ```
//!
//! Metric collection is **disabled by default**; enable it with
//! [`set_enabled`] or `PAS2P_OBS=1`. The `obs_overhead` bench guards the
//! disabled-path cost.
//!
//! # Example
//!
//! ```
//! pas2p_obs::set_enabled(true);
//! pas2p_obs::counter("demo.events").add(3);
//! let mut stage = pas2p_obs::stage("demo_stage");
//! stage.items(3);
//! let secs = stage.finish();
//! assert!(secs >= 0.0);
//! let snap = pas2p_obs::global().snapshot();
//! assert_eq!(snap.counters["demo.events"], 3);
//! pas2p_obs::set_enabled(false);
//! ```

#![forbid(unsafe_code)]

pub mod events;
pub mod export;
pub mod logger;
pub mod metrics;
pub mod registry;

pub use events::{
    flow_end, flow_start, instant, set_tracing, trace_span, tracing_enabled, EventSpan,
};
pub use export::{ChromeEvent, ChromeTrace, CAT_HOST_WORKER, PID_APP, PID_HOST};
pub use logger::{log, log_enabled, logger, span, Level, Logger, Span};
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary};
pub use registry::{
    counter, enabled, gauge, global, histogram, set_enabled, stage, MetricsSnapshot, Registry,
    StageGuard, StageProfile,
};
