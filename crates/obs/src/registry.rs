//! Global metrics registry, stage profiler, and serializable snapshot.
//!
//! Metric collection is **disabled by default** (enable with
//! [`set_enabled`] or `PAS2P_OBS=1`). Hot call sites gate on
//! [`enabled()`] — one relaxed atomic load — and cache their
//! `Arc<Counter>`/`Arc<Histogram>` handles in `OnceLock` statics, so the
//! registry's `Mutex<BTreeMap>` is only touched on first registration
//! and at snapshot time. [`Registry::reset`] therefore zeroes metrics
//! *in place* rather than clearing the maps: cached handles must keep
//! pointing at live, registered instruments.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSummary};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Process-wide instrument registry. Obtain it with [`global()`].
pub struct Registry {
    enabled: AtomicBool,
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
    stages: Mutex<Vec<StageProfile>>,
}

impl Registry {
    pub fn new(enabled: bool) -> Registry {
        Registry {
            enabled: AtomicBool::new(enabled),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            stages: Mutex::new(Vec::new()),
        }
    }

    fn from_env() -> Registry {
        let enabled = std::env::var("PAS2P_OBS")
            .map(|v| matches!(v.trim(), "1" | "true" | "on" | "yes"))
            .unwrap_or(false);
        Registry::new(enabled)
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Look up or create the named counter. Names should be
    /// `crate.metric` (e.g. `mpisim.messages`); they key the snapshot.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .unwrap()
                .entry(name)
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .unwrap()
                .entry(name)
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .unwrap()
                .entry(name)
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Start timing a pipeline stage. The guard's `finish()` always
    /// returns the elapsed seconds (callers like `tfat_seconds` depend
    /// on it even with observability off); the profile is recorded into
    /// the registry only when enabled. When event tracing is on
    /// ([`crate::events::set_tracing`]) the guard additionally opens a
    /// `host.stage` timeline span, so every profiled stage shows up in
    /// the exported timeline with no extra call-site code.
    pub fn stage(&'static self, name: &'static str) -> StageGuard {
        let span = if crate::events::tracing_enabled() {
            Some(crate::events::trace_span("host.stage", name))
        } else {
            None
        };
        StageGuard {
            registry: self,
            name,
            start: Instant::now(),
            items: 0,
            span,
        }
    }

    /// Record a pre-built stage profile directly, bypassing the
    /// [`StageGuard`] timer. For aggregated profiles a driver computes
    /// itself (e.g. the batch driver's bounded top-K of slowest jobs);
    /// callers gate on [`Registry::enabled`] like every other hot site.
    pub fn record_stage(&self, profile: StageProfile) {
        self.stages.lock().unwrap().push(profile);
    }

    /// Point-in-time copy of every registered instrument, in
    /// deterministic (name-sorted) order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            enabled: self.enabled(),
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.to_string(), v.summary()))
                .collect(),
            stages: self.stages.lock().unwrap().clone(),
        }
    }

    /// Zero every instrument in place and clear recorded stages. Cached
    /// `Arc` handles held by hot call sites stay valid and registered.
    pub fn reset(&self) {
        for c in self.counters.lock().unwrap().values() {
            c.reset();
        }
        for g in self.gauges.lock().unwrap().values() {
            g.reset();
        }
        for h in self.histograms.lock().unwrap().values() {
            h.reset();
        }
        self.stages.lock().unwrap().clear();
    }
}

/// Wall-clock profile of one pipeline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageProfile {
    pub name: String,
    pub wall_seconds: f64,
    pub items: u64,
    pub items_per_sec: f64,
}

/// Guard returned by [`stage()`]; see [`Registry::stage`].
pub struct StageGuard {
    registry: &'static Registry,
    name: &'static str,
    start: Instant,
    items: u64,
    span: Option<crate::events::EventSpan>,
}

impl StageGuard {
    /// Attach an item count (events processed, phases grown, ...) so the
    /// profile reports throughput alongside wall-clock.
    pub fn items(&mut self, n: u64) {
        self.items = n;
    }

    /// Stop the clock; returns elapsed seconds unconditionally and
    /// records a [`StageProfile`] when observability is enabled.
    pub fn finish(mut self) -> f64 {
        let wall = self.start.elapsed().as_secs_f64();
        if let Some(span) = self.span.take() {
            span.finish_with(vec![("items", self.items.to_string())]);
        }
        if self.registry.enabled() {
            let items_per_sec = if wall > 0.0 {
                self.items as f64 / wall
            } else {
                0.0
            };
            self.registry.record_stage(StageProfile {
                name: self.name.to_string(),
                wall_seconds: wall,
                items: self.items,
                items_per_sec,
            });
        }
        wall
    }
}

/// Serializable point-in-time view of the registry, embedded into
/// `Analysis`/`Prediction` JSON and written by `pas2p-cli --metrics`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub enabled: bool,
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSummary>,
    pub stages: Vec<StageProfile>,
}

impl MetricsSnapshot {
    /// Human-readable rendering for the `pas2p-cli metrics` subcommand.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "metrics snapshot (collection {})\n",
            if self.enabled { "enabled" } else { "disabled" }
        ));
        if !self.stages.is_empty() {
            out.push_str("\nstages:\n");
            for s in &self.stages {
                out.push_str(&format!(
                    "  {:<24} {:>12.6}s  items={:<12} {:>14.1}/s\n",
                    s.name, s.wall_seconds, s.items, s.items_per_sec
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("\ncounters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<40} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("\ngauges:\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k:<40} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("\nhistograms:\n");
            for (k, h) in &self.histograms {
                out.push_str(&format!(
                    "  {:<40} count={} min={} max={} mean={:.1} p50={} p95={} p99={}\n",
                    k, h.count, h.min, h.max, h.mean, h.p50, h.p95, h.p99
                ));
            }
        }
        out
    }

    /// Prometheus text exposition format (`pas2p-cli metrics --format
    /// prom`), so the snapshot can be scraped or pushed without custom
    /// tooling: counters and gauges map directly, histograms become
    /// summaries (quantiles + `_sum`/`_count`), and stage profiles
    /// become `pas2p_stage_*{stage="…"}` gauges. Repeated stage
    /// profiles are aggregated per stage name — exposition format
    /// forbids duplicate series.
    pub fn render_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 6);
            out.push_str("pas2p_");
            for c in name.chars() {
                if c.is_ascii_alphanumeric() {
                    out.push(c);
                } else {
                    out.push('_');
                }
            }
            out
        }
        fn label(value: &str) -> String {
            value
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        }
        let mut out = String::new();
        for (k, v) in &self.counters {
            let name = sanitize(k);
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (k, v) in &self.gauges {
            let name = sanitize(k);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (k, h) in &self.histograms {
            let name = sanitize(k);
            let sum = h.mean * h.count as f64;
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!("{name}_sum {sum}\n{name}_count {}\n", h.count));
        }
        if !self.stages.is_empty() {
            // Aggregate repeats (one analysis records e.g. several
            // `extract_phases` profiles across a batch).
            let mut agg: BTreeMap<&str, (f64, u64)> = BTreeMap::new();
            for s in &self.stages {
                let e = agg.entry(s.name.as_str()).or_insert((0.0, 0));
                e.0 += s.wall_seconds;
                e.1 += s.items;
            }
            out.push_str("# TYPE pas2p_stage_wall_seconds gauge\n");
            for (name, (wall, _)) in &agg {
                out.push_str(&format!(
                    "pas2p_stage_wall_seconds{{stage=\"{}\"}} {wall}\n",
                    label(name)
                ));
            }
            out.push_str("# TYPE pas2p_stage_items gauge\n");
            for (name, (_, items)) in &agg {
                out.push_str(&format!(
                    "pas2p_stage_items{{stage=\"{}\"}} {items}\n",
                    label(name)
                ));
            }
        }
        out
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry (initialized from `PAS2P_OBS` on first use).
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::from_env)
}

/// Is metric collection enabled? This is the hot-path gate: one
/// `OnceLock` read plus one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    global().enabled()
}

pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

pub fn counter(name: &'static str) -> Arc<Counter> {
    global().counter(name)
}

pub fn gauge(name: &'static str) -> Arc<Gauge> {
    global().gauge(name)
}

pub fn histogram(name: &'static str) -> Arc<Histogram> {
    global().histogram(name)
}

pub fn stage(name: &'static str) -> StageGuard {
    global().stage(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_snapshot_and_reset() {
        let reg = Box::leak(Box::new(Registry::new(true)));
        let c = reg.counter("t.count");
        c.add(7);
        reg.gauge("t.gauge").set(1.5);
        reg.histogram("t.hist").record(8);
        let mut g = reg.stage("t_stage");
        g.items(7);
        let wall = g.finish();
        assert!(wall >= 0.0);

        let snap = reg.snapshot();
        assert!(snap.enabled);
        assert_eq!(snap.counters["t.count"], 7);
        assert_eq!(snap.gauges["t.gauge"], 1.5);
        assert_eq!(snap.histograms["t.hist"].count, 1);
        assert_eq!(snap.stages.len(), 1);
        assert_eq!(snap.stages[0].name, "t_stage");
        assert_eq!(snap.stages[0].items, 7);

        reg.reset();
        // Handle obtained before the reset still points at the live,
        // registered counter.
        c.inc();
        let snap2 = reg.snapshot();
        assert_eq!(snap2.counters["t.count"], 1);
        assert_eq!(snap2.histograms["t.hist"].count, 0);
        assert!(snap2.stages.is_empty());
    }

    #[test]
    fn same_name_returns_same_instrument() {
        let reg = Registry::new(false);
        let a = reg.counter("dup");
        let b = reg.counter("dup");
        a.add(2);
        assert_eq!(b.get(), 2);
    }

    #[test]
    fn disabled_stage_still_times_but_records_nothing() {
        let reg = Box::leak(Box::new(Registry::new(false)));
        let wall = reg.stage("quiet").finish();
        assert!(wall >= 0.0);
        assert!(reg.snapshot().stages.is_empty());
    }

    #[test]
    fn snapshot_render_mentions_instruments() {
        let reg = Registry::new(true);
        reg.counter("render.count").add(3);
        reg.histogram("render.hist").record(10);
        let text = reg.snapshot().render();
        assert!(text.contains("render.count"));
        assert!(text.contains("render.hist"));
        assert!(text.contains("enabled"));
    }

    #[test]
    fn prometheus_exposition_covers_every_instrument_family() {
        let reg = Registry::new(true);
        reg.counter("prom.count").add(3);
        reg.gauge("prom.gauge").set(2.5);
        reg.histogram("prom.hist").record(100);
        reg.record_stage(StageProfile {
            name: "prom_stage".to_string(),
            wall_seconds: 0.5,
            items: 10,
            items_per_sec: 20.0,
        });
        reg.record_stage(StageProfile {
            name: "prom_stage".to_string(),
            wall_seconds: 0.25,
            items: 5,
            items_per_sec: 20.0,
        });
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("# TYPE pas2p_prom_count counter"));
        assert!(text.contains("pas2p_prom_count 3"));
        assert!(text.contains("# TYPE pas2p_prom_gauge gauge"));
        assert!(text.contains("pas2p_prom_gauge 2.5"));
        assert!(text.contains("# TYPE pas2p_prom_hist summary"));
        assert!(text.contains("pas2p_prom_hist{quantile=\"0.5\"}"));
        assert!(text.contains("pas2p_prom_hist_count 1"));
        // Duplicate stage profiles aggregate into one series.
        assert_eq!(text.matches("pas2p_stage_wall_seconds{stage=\"prom_stage\"}").count(), 1);
        assert!(text.contains("pas2p_stage_wall_seconds{stage=\"prom_stage\"} 0.75"));
        assert!(text.contains("pas2p_stage_items{stage=\"prom_stage\"} 15"));
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let reg = Registry::new(true);
        reg.counter("s.count").add(9);
        reg.gauge("s.gauge").set(0.25);
        reg.histogram("s.hist").record(100);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
