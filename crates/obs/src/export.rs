//! Chrome Trace Event Format / Perfetto-compatible timeline export.
//!
//! [`ChromeTrace`] is an in-memory timeline document: a list of
//! [`ChromeEvent`]s (complete slices, instants, flow arrows, metadata)
//! that serializes to the JSON object format consumed by Perfetto,
//! `chrome://tracing` and `speedscope` — `{"traceEvents": [...]}` with
//! microsecond timestamps.
//!
//! Two timestamp domains share one document, separated by `pid`:
//!
//! * **[`PID_HOST`]** — the tool observing itself: pipeline stages,
//!   extraction-pool workers, batch jobs. Wall-clock microseconds since
//!   the process trace epoch, converted from the [`crate::events`]
//!   stream by [`ChromeTrace::push_host_events`].
//! * **[`PID_APP`]** — the simulated application: per-rank
//!   compute/send/recv/collective slices and phase-boundary overlays in
//!   *virtual* microseconds, built by the pipeline crate from the
//!   recorded trace (virtual clocks are never sampled live).
//!
//! Serialization is deterministic: events are emitted in the order
//! produced by [`ChromeTrace::sort`] (metadata first, then a total
//! order on content) with fixed-precision timestamps, so two documents
//! describing the same run are byte-identical. [`ChromeTrace::normalized`]
//! additionally strips the host-scheduling detail that legitimately
//! varies across worker counts — wall-clock values, thread identities,
//! `host.worker` lanes and host-domain flows — leaving the
//! deterministic skeleton that `tests/par_determinism.rs` pins.

use crate::events::{Event, EventPhase};
use std::collections::HashMap;
use std::fmt::Write as _;

/// `pid` of the host (pipeline self-profile) track group.
pub const PID_HOST: u32 = 1;
/// `pid` of the simulated-application track group.
pub const PID_APP: u32 = 2;

/// Host-event category for concurrency-dependent worker lanes; dropped
/// by [`ChromeTrace::normalized`] because their count follows the
/// worker-pool size, not the workload.
pub const CAT_HOST_WORKER: &str = "host.worker";

/// One event in Chrome Trace Event Format. `ph` is the format's phase
/// letter: `X` complete slice, `i` instant, `s`/`f` flow start/end,
/// `M` metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Slice or marker name.
    pub name: String,
    /// Category (`host.*` wall-clock domain, `app.*` virtual domain,
    /// `__metadata` for `M` records).
    pub cat: String,
    /// Phase letter: 'X', 'i', 's', 'f' or 'M'.
    pub ph: char,
    /// Timestamp in microseconds (wall or virtual per the pid).
    pub ts_us: f64,
    /// Duration in microseconds ('X' events only).
    pub dur_us: Option<f64>,
    /// Process lane ([`PID_HOST`] or [`PID_APP`]).
    pub pid: u32,
    /// Thread lane within the process lane.
    pub tid: u64,
    /// Pairing id ('s'/'f' flow events only).
    pub id: Option<u64>,
    /// Ordered key/value annotations.
    pub args: Vec<(String, String)>,
}

impl ChromeEvent {
    fn meta(pid: u32, tid: u64, name: &str, value: String) -> ChromeEvent {
        ChromeEvent {
            name: name.to_string(),
            cat: "__metadata".to_string(),
            ph: 'M',
            ts_us: 0.0,
            dur_us: None,
            pid,
            tid,
            id: None,
            args: vec![("name".to_string(), value)],
        }
    }
}

/// A timeline document in Chrome Trace Event Format.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChromeTrace {
    /// The `traceEvents` array.
    pub events: Vec<ChromeEvent>,
    /// The `otherData` object (free-form document annotations).
    pub other_data: Vec<(String, String)>,
}

impl ChromeTrace {
    /// An empty document.
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// Attach a document-level annotation (`otherData`).
    pub fn other_data(&mut self, key: &str, value: &str) {
        self.other_data.push((key.to_string(), value.to_string()));
    }

    /// Name a process lane.
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.events
            .push(ChromeEvent::meta(pid, 0, "process_name", name.to_string()));
    }

    /// Name a thread lane.
    pub fn thread_name(&mut self, pid: u32, tid: u64, name: &str) {
        self.events
            .push(ChromeEvent::meta(pid, tid, "thread_name", name.to_string()));
    }

    /// A complete slice (`ph: "X"`): `[ts_us, ts_us + dur_us)`.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        pid: u32,
        tid: u64,
        cat: &str,
        name: &str,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(String, String)>,
    ) {
        self.events.push(ChromeEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'X',
            ts_us,
            dur_us: Some(dur_us.max(0.0)),
            pid,
            tid,
            id: None,
            args,
        });
    }

    /// A point marker (`ph: "i"`).
    pub fn instant(
        &mut self,
        pid: u32,
        tid: u64,
        cat: &str,
        name: &str,
        ts_us: f64,
        args: Vec<(String, String)>,
    ) {
        self.events.push(ChromeEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'i',
            ts_us,
            dur_us: None,
            pid,
            tid,
            id: None,
            args,
        });
    }

    /// A flow arrow's source (`ph: "s"`); pair with [`flow_end`] by id.
    ///
    /// [`flow_end`]: ChromeTrace::flow_end
    pub fn flow_start(&mut self, pid: u32, tid: u64, cat: &str, name: &str, ts_us: f64, id: u64) {
        self.events.push(ChromeEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 's',
            ts_us,
            dur_us: None,
            pid,
            tid,
            id: Some(id),
            args: Vec::new(),
        });
    }

    /// A flow arrow's destination (`ph: "f"`).
    pub fn flow_end(&mut self, pid: u32, tid: u64, cat: &str, name: &str, ts_us: f64, id: u64) {
        self.events.push(ChromeEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'f',
            ts_us,
            dur_us: None,
            pid,
            tid,
            id: Some(id),
            args: Vec::new(),
        });
    }

    /// Convert a recorded [`crate::events`] stream into host-domain
    /// timeline events under `pid`.
    ///
    /// Span begin/end pairs become complete (`X`) slices; a begin whose
    /// end never arrived (an abandoned deadline runner, a panicking
    /// worker) becomes a zero-length slice flagged `unfinished`. Parent
    /// links are resolved to the parent span's *name* — span ids are
    /// allocated from a process-global counter whose values depend on
    /// thread interleaving, so names, not numbers, are what exports can
    /// rely on. Host flows keep their numeric ids (dropped again by
    /// [`ChromeTrace::normalized`]).
    pub fn push_host_events(&mut self, events: &[Event], pid: u32) {
        // Span id → name, for parent resolution.
        let names: HashMap<u64, &str> = events
            .iter()
            .filter(|e| e.ph == EventPhase::Begin)
            .map(|e| (e.id, e.name.as_str()))
            .collect();
        let mut open: HashMap<u64, usize> = HashMap::new();
        for (i, e) in events.iter().enumerate() {
            match e.ph {
                EventPhase::Begin => {
                    open.insert(e.id, i);
                }
                EventPhase::End => {
                    let Some(begin_idx) = open.remove(&e.id) else {
                        continue; // end without begin: buffer overflow drop
                    };
                    let b = &events[begin_idx];
                    let mut args: Vec<(String, String)> = Vec::new();
                    if b.parent != 0 {
                        if let Some(parent) = names.get(&b.parent) {
                            args.push(("parent".to_string(), (*parent).to_string()));
                        }
                    }
                    for (k, v) in b.args.iter().chain(e.args.iter()) {
                        args.push((k.to_string(), v.clone()));
                    }
                    self.complete(
                        pid,
                        b.tid,
                        b.cat,
                        &b.name,
                        b.ts_ns as f64 / 1e3,
                        (e.ts_ns.saturating_sub(b.ts_ns)) as f64 / 1e3,
                        args,
                    );
                }
                EventPhase::Instant => {
                    let mut args: Vec<(String, String)> = Vec::new();
                    if e.parent != 0 {
                        if let Some(parent) = names.get(&e.parent) {
                            args.push(("parent".to_string(), (*parent).to_string()));
                        }
                    }
                    for (k, v) in &e.args {
                        args.push((k.to_string(), v.clone()));
                    }
                    self.instant(pid, e.tid, e.cat, &e.name, e.ts_ns as f64 / 1e3, args);
                }
                EventPhase::FlowStart => {
                    self.flow_start(pid, e.tid, e.cat, &e.name, e.ts_ns as f64 / 1e3, e.id);
                }
                EventPhase::FlowEnd => {
                    self.flow_end(pid, e.tid, e.cat, &e.name, e.ts_ns as f64 / 1e3, e.id);
                }
            }
        }
        // Spans still open when the stream was taken.
        let mut unfinished: Vec<usize> = open.into_values().collect();
        unfinished.sort_unstable();
        for begin_idx in unfinished {
            let b = &events[begin_idx];
            self.complete(
                pid,
                b.tid,
                b.cat,
                &b.name,
                b.ts_ns as f64 / 1e3,
                0.0,
                vec![("unfinished".to_string(), "true".to_string())],
            );
        }
    }

    /// Establish the canonical event order: metadata records first, then
    /// a total order on (pid, tid, ts, phase, name, id, args) so equal
    /// documents serialize byte-identically.
    pub fn sort(&mut self) {
        fn ph_rank(ph: char) -> u8 {
            match ph {
                'M' => 0,
                'X' => 1,
                'i' => 2,
                's' => 3,
                'f' => 4,
                _ => 5,
            }
        }
        self.events.sort_by(|a, b| {
            (a.ph != 'M')
                .cmp(&(b.ph != 'M'))
                .then_with(|| a.pid.cmp(&b.pid))
                .then_with(|| a.tid.cmp(&b.tid))
                .then_with(|| a.ts_us.total_cmp(&b.ts_us))
                .then_with(|| ph_rank(a.ph).cmp(&ph_rank(b.ph)))
                .then_with(|| a.name.cmp(&b.name))
                .then_with(|| a.id.cmp(&b.id))
                .then_with(|| a.args.cmp(&b.args))
        });
    }

    /// The document with host-scheduling detail removed: wall-clock
    /// timestamps and durations zeroed, host thread lanes collapsed to
    /// tid 0, [`CAT_HOST_WORKER`] lanes and host-domain flow arrows
    /// dropped (their count and ids follow the pool size and thread
    /// interleaving). The virtual-time application domain is untouched.
    /// The result is re-sorted, so serializing it is byte-identical for
    /// any worker count — the diffable determinism surface.
    pub fn normalized(&self) -> ChromeTrace {
        let mut out = ChromeTrace {
            events: Vec::with_capacity(self.events.len()),
            other_data: self.other_data.clone(),
        };
        for e in &self.events {
            let host = e.pid == PID_HOST;
            if host && (e.cat == CAT_HOST_WORKER || e.ph == 's' || e.ph == 'f') {
                continue;
            }
            let mut e = e.clone();
            if host {
                e.ts_us = 0.0;
                if e.dur_us.is_some() {
                    e.dur_us = Some(0.0);
                }
                e.tid = 0;
            }
            out.events.push(e);
        }
        out.sort();
        out
    }

    /// Serialize to Chrome Trace Event JSON (the object form with a
    /// `traceEvents` array). Emission order is the current event order —
    /// call [`ChromeTrace::sort`] (or use a composer that does) for the
    /// canonical byte-stable form.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(self.events.len() * 96 + 256);
        s.push_str("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"name\":");
            json_string(&mut s, &e.name);
            s.push_str(",\"cat\":");
            json_string(&mut s, &e.cat);
            let _ = write!(s, ",\"ph\":\"{}\",\"ts\":{}", e.ph, Us(e.ts_us));
            if let Some(dur) = e.dur_us {
                let _ = write!(s, ",\"dur\":{}", Us(dur));
            }
            let _ = write!(s, ",\"pid\":{},\"tid\":{}", e.pid, e.tid);
            if let Some(id) = e.id {
                let _ = write!(s, ",\"id\":\"{id:#x}\"");
            }
            if e.ph == 'f' {
                // Bind the arrow to the enclosing slice at this ts.
                s.push_str(",\"bp\":\"e\"");
            }
            if e.ph == 'i' {
                s.push_str(",\"s\":\"t\"");
            }
            if !e.args.is_empty() {
                s.push_str(",\"args\":{");
                for (j, (k, v)) in e.args.iter().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    json_string(&mut s, k);
                    s.push(':');
                    json_string(&mut s, v);
                }
                s.push('}');
            }
            s.push('}');
        }
        s.push_str("],\"displayTimeUnit\":\"ms\"");
        if !self.other_data.is_empty() {
            s.push_str(",\"otherData\":{");
            for (j, (k, v)) in self.other_data.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                json_string(&mut s, k);
                s.push(':');
                json_string(&mut s, v);
            }
            s.push('}');
        }
        s.push_str("}\n");
        s
    }
}

/// Microsecond timestamp with fixed three-decimal (nanosecond)
/// precision — `{}` on `f64` varies its width, which would make equal
/// documents compare unequal as bytes.
struct Us(f64);

impl std::fmt::Display for Us {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Guard against NaN/inf sneaking into a timestamp field: JSON
        // has no representation for them.
        if self.0.is_finite() {
            write!(f, "{:.3}", self.0)
        } else {
            write!(f, "0.000")
        }
    }
}

/// Append `v` to `s` as a JSON string literal.
fn json_string(s: &mut String, v: &str) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_event_serializes_all_required_keys() {
        let mut doc = ChromeTrace::new();
        doc.process_name(PID_APP, "app");
        doc.complete(
            PID_APP,
            3,
            "app.send",
            "send",
            1.5,
            2.0,
            vec![("bytes".into(), "64".into())],
        );
        doc.sort();
        let json = doc.to_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.000"));
        assert!(json.contains("\"args\":{\"bytes\":\"64\"}"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut doc = ChromeTrace::new();
        doc.instant(PID_HOST, 0, "host.stage", "a\"b\\c\n", 0.0, Vec::new());
        let json = doc.to_json();
        assert!(json.contains("a\\\"b\\\\c\\n"));
    }

    #[test]
    fn host_spans_pair_into_complete_slices() {
        use crate::events::{Event, EventPhase};
        let mk = |ph, id, parent, ts, name: &str| Event {
            name: name.to_string(),
            cat: "host.stage",
            ph,
            ts_ns: ts,
            tid: 7,
            id,
            parent,
            args: Vec::new(),
        };
        let events = vec![
            mk(EventPhase::Begin, 1, 0, 1_000, "outer"),
            mk(EventPhase::Begin, 2, 1, 2_000, "inner"),
            mk(EventPhase::End, 2, 1, 3_000, ""),
            mk(EventPhase::End, 1, 0, 9_000, ""),
            mk(EventPhase::Begin, 3, 0, 10_000, "dangling"),
        ];
        let mut doc = ChromeTrace::new();
        doc.push_host_events(&events, PID_HOST);
        assert_eq!(doc.events.len(), 3);
        let inner = doc
            .events
            .iter()
            .find(|e| e.name == "inner")
            .expect("inner slice");
        assert_eq!(inner.ph, 'X');
        assert_eq!(inner.ts_us, 2.0);
        assert_eq!(inner.dur_us, Some(1.0));
        assert!(inner
            .args
            .contains(&("parent".to_string(), "outer".to_string())));
        let dangling = doc
            .events
            .iter()
            .find(|e| e.name == "dangling")
            .expect("unfinished slice");
        assert!(dangling
            .args
            .contains(&("unfinished".to_string(), "true".to_string())));
    }

    #[test]
    fn normalized_strips_host_scheduling_detail() {
        let mut doc = ChromeTrace::new();
        doc.complete(PID_HOST, 9, "host.stage", "extract", 5.0, 2.0, Vec::new());
        doc.complete(PID_HOST, 3, CAT_HOST_WORKER, "w0", 5.0, 1.0, Vec::new());
        doc.flow_start(PID_HOST, 3, "host.batch", "handoff", 5.0, 42);
        doc.complete(PID_APP, 1, "app.send", "send", 7.0, 1.0, Vec::new());
        let norm = doc.normalized();
        assert_eq!(norm.events.len(), 2, "worker lane and host flow dropped");
        let host = norm.events.iter().find(|e| e.pid == PID_HOST).unwrap();
        assert_eq!((host.ts_us, host.dur_us, host.tid), (0.0, Some(0.0), 0));
        let app = norm.events.iter().find(|e| e.pid == PID_APP).unwrap();
        assert_eq!(app.ts_us, 7.0, "virtual domain untouched");
    }

    #[test]
    fn normalized_serialization_is_invariant_to_input_order() {
        let mut a = ChromeTrace::new();
        let mut b = ChromeTrace::new();
        a.complete(PID_HOST, 1, "host.stage", "s1", 1.0, 2.0, Vec::new());
        a.complete(PID_HOST, 2, "host.stage", "s2", 3.0, 4.0, Vec::new());
        b.complete(PID_HOST, 5, "host.stage", "s2", 8.0, 1.0, Vec::new());
        b.complete(PID_HOST, 6, "host.stage", "s1", 9.0, 2.0, Vec::new());
        assert_eq!(a.normalized().to_json(), b.normalized().to_json());
    }
}
