//! Structure-of-arrays similarity kernel: columnar phase patterns,
//! O(1)-summary banding, and LSH-style bucketing of phase sketches.
//!
//! The scalar similarity walk ([`SimilarityConfig::phases_similar`])
//! chases `Vec<Vec<Option<CellSig>>>` pointers per cell. For the merge
//! loop of `extract_phases` — the TFAT hot loop — this module flattens a
//! pattern into parallel columns ([`SoaPattern`]) so the comparison is
//! straight slice arithmetic, and layers two *exact* skip mechanisms on
//! top:
//!
//! * **Banding** ([`SimilarityConfig::band_admits`]): per-pattern O(1)
//!   summaries ([`BandStats`]) give a necessary condition for a match.
//!   A candidate whose size/compute mass is too far from a known phase's
//!   is rejected before any per-cell work. The inequality is derived as
//!   a strict over-approximation of the similarity criterion (see
//!   DESIGN.md "Similarity kernel"), so a band rejection can never drop
//!   a pair the scalar walk would have matched.
//! * **LSH bucketing** ([`SoaIndex`]): known phases are bucketed by a
//!   sketch of the only similarity-*invariant* feature a match requires
//!   — the tick count (`phases_similar` returns `false` outright on
//!   length mismatch, and *no* cell-derived feature is invariant,
//!   because a fully-populated pattern is similar to an all-empty one
//!   of the same length). The sketch is a bijective mix, so buckets
//!   neither merge different lengths nor split equal ones, and scanning
//!   one bucket in ascending insertion order reproduces the sequential
//!   first-match walk exactly.
//!
//! Both mechanisms preserve the kernel's output contract: the resulting
//! `PhaseTable` is byte-identical to the scalar oracle at any worker
//! count (`tests/kernel_equivalence.rs`).

use crate::extract::Pattern;
use crate::sig::{CellSig, SimilarityConfig};
use pas2p_model::LogicalTrace;
use pas2p_trace::EventKind;
use std::collections::HashMap;
use std::sync::Arc;

/// Bit set in [`SoaPattern::key`] when the cell's peer offset is present.
const KEY_PEER_PRESENT: u32 = 1 << 8;

/// Dense communication-kind code for the key column. `CollClass` is a
/// fieldless enum, so its discriminant is stable within a build.
fn kind_code(kind: EventKind) -> u32 {
    match kind {
        EventKind::Send => 0,
        EventKind::Recv => 1,
        EventKind::Coll(c) => 2 + c as u32,
    }
}

/// O(1) per-pattern summaries backing the band prefilter.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BandStats {
    /// Number of present (non-empty) cells.
    pub present: u64,
    /// Σ size over present cells (u128: no overflow for any trace).
    pub size_sum: u128,
    /// max size over present cells.
    pub size_max: u64,
    /// Σ compute_before over present cells.
    pub compute_sum: f64,
    /// max compute_before over present cells.
    pub compute_max: f64,
    /// All compute values are finite and non-negative — the compute band
    /// is only sound under this precondition and abstains otherwise.
    pub compute_ok: bool,
}

/// Bijective 64-bit mix (splitmix64 finalizer) of a pattern's tick
/// count — the bucket key of [`SoaIndex`]. Bijectivity means two
/// patterns land in the same bucket *iff* they have the same length,
/// which is exactly the reach of the similarity criterion's hard
/// length gate.
pub fn sketch_of(ticks: usize) -> u64 {
    let mut z = (ticks as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A phase pattern in structure-of-arrays layout: five parallel columns
/// of `ticks × width` cells (tick-major), plus precomputed band stats
/// and the bucket sketch.
///
/// Comparisons require both sides to share the same `width` — always
/// true inside one extraction, where `width == nprocs`.
#[derive(Debug, Clone, PartialEq)]
pub struct SoaPattern {
    ticks: usize,
    width: usize,
    /// 1 where a cell holds an event, 0 where it is absent.
    mask: Vec<u8>,
    /// `kind_code | KEY_PEER_PRESENT?` — one equality test covers the
    /// scalar walk's kind and peer-presence checks.
    key: Vec<u32>,
    /// Peer rank offset (0 when absent; gated by the key bit).
    peer: Vec<i64>,
    /// Communication volume in bytes.
    size: Vec<u64>,
    /// Compute time preceding the event.
    compute: Vec<f64>,
    stats: BandStats,
    sketch: u64,
}

impl SoaPattern {
    fn empty(ticks: usize, width: usize) -> SoaPattern {
        let n = ticks * width;
        SoaPattern {
            ticks,
            width,
            mask: vec![0; n],
            key: vec![0; n],
            peer: vec![0; n],
            size: vec![0; n],
            compute: vec![0.0; n],
            stats: BandStats {
                compute_ok: true,
                ..BandStats::default()
            },
            sketch: sketch_of(ticks),
        }
    }

    fn set(&mut self, cell: usize, sig: &CellSig) {
        self.mask[cell] = 1;
        self.key[cell] = kind_code(sig.kind)
            | if sig.peer_offset.is_some() {
                KEY_PEER_PRESENT
            } else {
                0
            };
        self.peer[cell] = sig.peer_offset.unwrap_or(0);
        self.size[cell] = sig.size;
        self.compute[cell] = sig.compute_before;
    }

    /// Recompute the band stats from the columns. Called once after the
    /// columns are filled.
    fn seal(&mut self) {
        let mut st = BandStats {
            compute_ok: true,
            ..BandStats::default()
        };
        for i in 0..self.mask.len() {
            if self.mask[i] == 0 {
                continue;
            }
            st.present += 1;
            st.size_sum += self.size[i] as u128;
            st.size_max = st.size_max.max(self.size[i]);
            let c = self.compute[i];
            st.compute_sum += c;
            st.compute_max = st.compute_max.max(c);
            st.compute_ok &= c.is_finite() && c >= 0.0;
        }
        self.stats = st;
    }

    /// Build the columnar pattern of the window `[s, e)` of a logical
    /// trace, with `width == nprocs`.
    pub fn from_ticks(lt: &LogicalTrace, s: usize, e: usize) -> SoaPattern {
        let width = lt.nprocs as usize;
        let mut p = SoaPattern::empty(e - s, width);
        for (r, tick) in lt.ticks[s..e].iter().enumerate() {
            for ev in &tick.events {
                p.set(r * width + ev.process as usize, &CellSig::of(ev, lt.nprocs));
            }
        }
        p.seal();
        p
    }

    /// Convert an array-of-structs pattern. Rows shorter than the widest
    /// row pad with absent cells, so only rectangular patterns — the only
    /// shape extraction produces — are faithful to the scalar walk.
    pub fn from_pattern(pattern: &Pattern) -> SoaPattern {
        let width = pattern.iter().map(|r| r.len()).max().unwrap_or(0);
        let mut p = SoaPattern::empty(pattern.len(), width);
        for (r, row) in pattern.iter().enumerate() {
            for (c, cell) in row.iter().enumerate() {
                if let Some(sig) = cell {
                    p.set(r * width + c, sig);
                }
            }
        }
        p.seal();
        p
    }

    /// Phase length in ticks.
    pub fn ticks(&self) -> usize {
        self.ticks
    }

    /// Row width (process count).
    pub fn width(&self) -> usize {
        self.width
    }

    /// The LSH bucket key.
    pub fn sketch(&self) -> u64 {
        self.sketch
    }

    /// The band-prefilter summaries.
    pub fn stats(&self) -> &BandStats {
        &self.stats
    }
}

impl SimilarityConfig {
    /// `(similar, total)` cell counts of the SoA comparison — the exact
    /// counts [`SimilarityConfig::phases_similar`] computes on the AoS
    /// representation. `None` when the tick counts differ (hard gate).
    pub fn soa_similarity_score(&self, a: &SoaPattern, b: &SoaPattern) -> Option<(u64, u64)> {
        if a.ticks != b.ticks {
            return None;
        }
        debug_assert_eq!(a.width, b.width, "SoA comparison requires equal widths");
        let n = a.mask.len().min(b.mask.len());
        let mut total = 0u64;
        let mut similar = 0u64;
        for i in 0..n {
            let (ma, mb) = (a.mask[i], b.mask[i]);
            if ma == 0 && mb == 0 {
                continue; // empty cells on both sides are not events
            }
            total += 1;
            if ma == 0 || mb == 0 {
                similar += 1; // absent is similar to anything
                continue;
            }
            if a.key[i] == b.key[i]
                && a.peer[i] == b.peer[i]
                && Self::size_similar(a.size[i], b.size[i], self.size_ratio)
                && Self::ratio_similar(
                    a.compute[i],
                    b.compute[i],
                    self.compute_ratio,
                    self.compute_floor,
                )
            {
                similar += 1;
            }
        }
        Some((similar, total))
    }

    /// Phase-level similarity on the SoA layout — semantically identical
    /// to [`SimilarityConfig::phases_similar`] on the AoS layout.
    pub fn soa_phases_similar(&self, a: &SoaPattern, b: &SoaPattern) -> bool {
        match self.soa_similarity_score(a, b) {
            None => false,
            Some((_, 0)) => true,
            Some((similar, total)) => similar as f64 / total as f64 >= self.event_fraction,
        }
    }

    /// Band prefilter: a *necessary* condition for `soa_phases_similar`,
    /// decided from [`BandStats`] alone. Returns `false` only when the
    /// pair provably cannot match; abstains (`true`) in every degenerate
    /// or unprovable case, so it never drops a true match.
    ///
    /// Derivation sketch (sizes; computes are analogous): let `i` be the
    /// number of cells present on both sides, `na`/`nb` the present
    /// counts. Then `i ∈ [i_min, i_max]` with
    /// `i_min = max(0, na + nb − ticks·width)` and `i_max = min(na, nb)`.
    /// Counted cells `total = na + nb − i ≤ total_max = na + nb − i_min`,
    /// and a match tolerates at most `D = (1 − f)·total_max` dissimilar
    /// cells (single-sided cells are always similar, so every dissimilar
    /// cell is a both-present pair). Bounding `|Σa − Σb|` pair by pair:
    /// a ratio-similar pair contributes `≤ (1 − r)(sa + sb)`, a
    /// dissimilar pair `≤ max(size_max)`, a single-sided cell its own
    /// size `≤ size_max` of its side, and there are at most
    /// `na − i_min` / `nb − i_min` of those. Exceeding the summed bound
    /// (with a relative slack for f64 rounding) refutes the match.
    pub fn band_admits(&self, a: &SoaPattern, b: &SoaPattern) -> bool {
        if a.ticks != b.ticks {
            return false; // hard length gate: no match is possible
        }
        if a.width != b.width {
            return true; // out of contract — abstain
        }
        let f = self.event_fraction;
        if f <= 0.0 {
            return true; // every equal-length pair matches
        }
        if !(f <= 1.0) {
            // f > 1 or NaN: only zero-total pairs match.
            return a.stats.present == 0 && b.stats.present == 0;
        }
        let (na, nb) = (a.stats.present, b.stats.present);
        let ncells = (a.ticks * a.width) as u64;
        let i_min = (na + nb).saturating_sub(ncells);
        let i_max = na.min(nb);
        let total_max = na + nb - i_min;
        if total_max == 0 {
            return true; // two all-empty patterns always match
        }
        let budget = ((1.0 - f) * total_max as f64).max(0.0);
        // Relative-plus-absolute slack: the scalar criterion decides each
        // cell exactly, while the band sums in f64 — round towards admit.
        let admits = |lhs: f64, rhs: f64| !(lhs > rhs * (1.0 + 1e-9) + 1e-9);

        let r = self.size_ratio;
        let r = if r.is_nan() { 0.0 } else { r.clamp(0.0, 1.0) };
        let lhs = a.stats.size_sum.abs_diff(b.stats.size_sum) as f64;
        let rhs = (1.0 - r) * (a.stats.size_sum + b.stats.size_sum) as f64
            + budget * a.stats.size_max.max(b.stats.size_max) as f64
            + (na - i_min) as f64 * a.stats.size_max as f64
            + (nb - i_min) as f64 * b.stats.size_max as f64;
        if !admits(lhs, rhs) {
            return false;
        }

        if a.stats.compute_ok && b.stats.compute_ok {
            let c = self.compute_ratio;
            let c = if c.is_nan() { 0.0 } else { c.clamp(0.0, 1.0) };
            // Pairs similar via the noise floor differ by at most the
            // floor itself; at most i_max pairs can take that route.
            let floor = self.compute_floor.max(0.0); // NaN → 0 (abstains)
            let lhs = (a.stats.compute_sum - b.stats.compute_sum).abs();
            let rhs = (1.0 - c) * (a.stats.compute_sum + b.stats.compute_sum)
                + i_max as f64 * floor
                + budget * a.stats.compute_max.max(b.stats.compute_max)
                + (na - i_min) as f64 * a.stats.compute_max
                + (nb - i_min) as f64 * b.stats.compute_max;
            if !admits(lhs, rhs) {
                return false;
            }
        }
        true
    }
}

/// Counters of one bucket scan ([`SoaIndex::first_match`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MatchStats {
    /// Full SoA comparisons actually executed.
    pub compares: u64,
    /// Candidates rejected by the band prefilter before a full compare.
    pub band_rejects: u64,
    /// Known phases never looked at because they live in other buckets.
    pub lsh_skipped: u64,
}

/// The known-phase index of the SoA merge path: phases in discovery
/// order plus LSH buckets keyed by sketch. Bucket entries are global
/// phase indices in ascending order (insertion order), so a bucket scan
/// visits candidates exactly as the sequential first-match walk would.
#[derive(Debug, Default)]
pub struct SoaIndex {
    known: Vec<Arc<SoaPattern>>,
    buckets: HashMap<u64, Vec<u32>>,
}

impl SoaIndex {
    pub fn new() -> SoaIndex {
        SoaIndex::default()
    }

    /// Number of known phases.
    pub fn len(&self) -> usize {
        self.known.len()
    }

    pub fn is_empty(&self) -> bool {
        self.known.is_empty()
    }

    /// The known phase at global index `i`.
    pub fn get(&self, i: usize) -> &Arc<SoaPattern> {
        &self.known[i]
    }

    /// Append a newly discovered phase; its global index is `len() − 1`.
    pub fn push(&mut self, pattern: Arc<SoaPattern>) {
        let idx = self.known.len() as u32;
        self.buckets.entry(pattern.sketch()).or_default().push(idx);
        self.known.push(pattern);
    }

    /// Global indices of the known phases sharing `sketch`, ascending.
    pub fn bucket(&self, sketch: u64) -> &[u32] {
        self.buckets.get(&sketch).map_or(&[], |v| v.as_slice())
    }

    /// First match of `candidate` among the known phases — the same
    /// index the sequential scalar walk returns, found by scanning only
    /// the candidate's bucket with the band prefilter in front.
    pub fn first_match(
        &self,
        cfg: &SimilarityConfig,
        candidate: &SoaPattern,
    ) -> (Option<usize>, MatchStats) {
        let bucket = self.bucket(candidate.sketch());
        let mut stats = MatchStats {
            lsh_skipped: (self.known.len() - bucket.len()) as u64,
            ..MatchStats::default()
        };
        for &i in bucket {
            let known = &self.known[i as usize];
            if !cfg.band_admits(known, candidate) {
                stats.band_rejects += 1;
                continue;
            }
            stats.compares += 1;
            if cfg.soa_phases_similar(known, candidate) {
                return (Some(i as usize), stats);
            }
        }
        (None, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(kind: EventKind, peer: Option<i64>, size: u64, compute: f64) -> Option<CellSig> {
        Some(CellSig {
            kind,
            peer_offset: peer,
            size,
            compute_before: compute,
        })
    }

    fn pattern(rows: &[Vec<Option<CellSig>>]) -> Pattern {
        rows.to_vec()
    }

    #[test]
    fn soa_round_trip_matches_scalar_similarity() {
        let cfg = SimilarityConfig::default();
        let a = pattern(&[
            vec![sig(EventKind::Send, Some(1), 100, 1.0), None],
            vec![None, sig(EventKind::Recv, Some(3), 64, 0.5)],
        ]);
        let mut b = a.clone();
        b[0][0] = sig(EventKind::Send, Some(1), 90, 0.95);
        let (sa, sb) = (SoaPattern::from_pattern(&a), SoaPattern::from_pattern(&b));
        assert_eq!(cfg.phases_similar(&a, &b), cfg.soa_phases_similar(&sa, &sb));
        assert_eq!(
            cfg.phase_similarity_score(&a, &b),
            cfg.soa_similarity_score(&sa, &sb)
        );
    }

    #[test]
    fn length_mismatch_is_a_hard_gate() {
        let cfg = SimilarityConfig::default();
        let row = vec![sig(EventKind::Send, Some(1), 8, 0.1)];
        let a = SoaPattern::from_pattern(&pattern(&[row.clone()]));
        let b = SoaPattern::from_pattern(&pattern(&[row.clone(), row]));
        assert!(!cfg.soa_phases_similar(&a, &b));
        assert!(!cfg.band_admits(&a, &b));
        assert_ne!(a.sketch(), b.sketch(), "sketch mix is bijective");
    }

    #[test]
    fn band_rejects_wildly_different_mass() {
        let cfg = SimilarityConfig::default();
        let small = pattern(&vec![vec![sig(EventKind::Send, Some(1), 8, 0.01); 4]; 4]);
        let large = pattern(&vec![
            vec![sig(EventKind::Send, Some(1), 1 << 30, 100.0); 4];
            4
        ]);
        let (sa, sb) = (
            SoaPattern::from_pattern(&small),
            SoaPattern::from_pattern(&large),
        );
        assert!(!cfg.soa_phases_similar(&sa, &sb));
        assert!(
            !cfg.band_admits(&sa, &sb),
            "uniform 2^27× mass gap must be refutable from the stats"
        );
    }

    #[test]
    fn band_admits_every_similar_pair() {
        let cfg = SimilarityConfig::default();
        // A fully-populated pattern and an all-empty one of the same
        // shape are similar (single-sided cells always are) but have
        // maximally different stats — the band must still admit.
        let full = pattern(&vec![
            vec![sig(EventKind::Send, Some(1), 1 << 20, 5.0); 3];
            2
        ]);
        let empty = pattern(&vec![vec![None; 3]; 2]);
        let (sf, se) = (
            SoaPattern::from_pattern(&full),
            SoaPattern::from_pattern(&empty),
        );
        assert!(cfg.soa_phases_similar(&sf, &se));
        assert!(cfg.band_admits(&sf, &se));
        assert!(cfg.band_admits(&sf, &sf));
        assert!(cfg.band_admits(&se, &se));
    }

    #[test]
    fn band_abstains_on_degenerate_configs() {
        let row = vec![sig(EventKind::Send, Some(1), 100, 1.0); 2];
        let a = SoaPattern::from_pattern(&pattern(&[row.clone()]));
        let far = vec![sig(EventKind::Send, Some(1), 1 << 40, 1000.0); 2];
        let b = SoaPattern::from_pattern(&pattern(&[far]));
        for f in [0.0, -1.0, f64::NAN, 2.0] {
            let cfg = SimilarityConfig {
                event_fraction: f,
                ..SimilarityConfig::default()
            };
            // Whatever the verdict, a rejection must agree with the full
            // compare — on the far pair and on the reflexive ones.
            for (x, y) in [(&a, &b), (&a, &a), (&b, &b)] {
                if cfg.soa_phases_similar(x, y) {
                    assert!(cfg.band_admits(x, y), "event_fraction = {f}");
                }
            }
        }
    }

    #[test]
    fn index_first_match_is_sequential_first_match() {
        let cfg = SimilarityConfig::default();
        let mk = |size: u64, ticks: usize| {
            Arc::new(SoaPattern::from_pattern(&pattern(&vec![
                vec![sig(
                    EventKind::Send,
                    Some(1),
                    size,
                    1.0
                )];
                ticks
            ])))
        };
        let mut index = SoaIndex::new();
        let knowns = [mk(100, 1), mk(100, 2), mk(104, 2), mk(100, 3)];
        for k in &knowns {
            index.push(Arc::clone(k));
        }
        let cand = mk(102, 2);
        let (hit, stats) = index.first_match(&cfg, &cand);
        // Sequential walk: index 0 fails the length gate, index 1 is the
        // first length-2 match.
        assert_eq!(hit, Some(1));
        assert_eq!(stats.lsh_skipped, 2, "length-1 and length-3 never scanned");
        assert!(stats.compares >= 1);
    }

    #[test]
    fn bucket_entries_stay_ascending() {
        let mut index = SoaIndex::new();
        for ticks in [2usize, 3, 2, 2, 3] {
            let rows = vec![vec![sig(EventKind::Send, Some(1), 8, 0.1)]; ticks];
            index.push(Arc::new(SoaPattern::from_pattern(&rows)));
        }
        assert_eq!(index.bucket(sketch_of(2)), &[0, 2, 3]);
        assert_eq!(index.bucket(sketch_of(3)), &[1, 4]);
        assert_eq!(index.bucket(sketch_of(7)), &[] as &[u32]);
    }
}
