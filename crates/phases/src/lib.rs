//! Pattern identification (paper §3.3) and the phase table (§3.4).
//!
//! Parallel applications are highly repetitive; PAS2P exploits this by
//! cutting the logical trace into *phases* — the longest tick ranges that
//! do not repeat a communication within any process — and deduplicating
//! them with a similarity criterion. Each unique phase accumulates a
//! *weight* (its repetition count); phases whose `weight × execution time`
//! reaches 1 % of the application runtime are *relevant* and become the
//! constituents of the signature.
//!
//! The extraction algorithm follows the paper's six steps (Fig 6):
//!
//! 1. a Startpoint opens a phase at a tick;
//! 2. the phase extends tick by tick;
//! 3. …until an event with the same communication type recurs in some
//!    process;
//! 4. if the first occurrence sits at the Startpoint the candidate phase
//!    closes there; otherwise the range splits into sub-phases *a* (before
//!    the first occurrence) and *b* (between the two occurrences);
//! 5. the candidate is looked up among the saved phases by similarity
//!    (equal tick count; per-event: same communication type and similar
//!    volume, compute time ≥ 85 % similar, absent-vs-anything counts as
//!    similar; the phase matches when ≥ 80 % of its events are similar) —
//!    a match increments the weight, otherwise a new phase is saved;
//! 6. a new Startpoint opens where the last saved phase ended.
//!
//! All thresholds live in [`SimilarityConfig`] (the 80 % value is
//! explicitly "configurable" in the paper; the ablation benches sweep
//! them).

#![forbid(unsafe_code)]

pub mod extract;
pub mod sig;
pub mod soa;
pub mod table;

pub use extract::{extract_phases, Occurrence, Pattern, Phase, PhaseAnalysis};
pub use sig::{CellSig, SimilarityConfig, SimilarityKernel};
pub use soa::{BandStats, MatchStats, SoaIndex, SoaPattern};
pub use table::{MeasureWindow, PhaseRow, PhaseTable};
