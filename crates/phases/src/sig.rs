//! Event signatures and the similarity criterion.

use pas2p_model::LogicalEvent;
use pas2p_trace::EventKind;
use serde::{Deserialize, Serialize};

/// The behavioural signature of one event cell in a phase pattern: what
/// PBB comparison looks at (paper §3.3 step 5b).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellSig {
    /// Communication type.
    pub kind: EventKind,
    /// Peer expressed as a rank *offset* (`peer − process`, wrapped), so
    /// that the same stencil exchanged by different ranks compares equal
    /// and the signature survives re-mapping.
    pub peer_offset: Option<i64>,
    /// Communication volume in bytes.
    pub size: u64,
    /// Computational time preceding the event (the PBB body), seconds on
    /// the base machine.
    pub compute_before: f64,
}

impl CellSig {
    /// Build the signature of a logical event.
    pub fn of(e: &LogicalEvent, nprocs: u32) -> CellSig {
        let peer_offset = e.peer.map(|p| {
            let n = nprocs as i64;
            let d = p as i64 - e.process as i64;
            d.rem_euclid(n)
        });
        CellSig {
            kind: e.kind,
            peer_offset,
            size: e.size,
            compute_before: e.compute_before,
        }
    }

    /// The *repetition key*: what "an event with the same type of
    /// communication" means for the phase-cutting rule (step 3/4). Volume
    /// is included so that, e.g., a boundary exchange and a bulk transpose
    /// to the same peer do not cut each other.
    pub fn repetition_key(&self) -> (EventKind, Option<i64>, u64) {
        (self.kind, self.peer_offset, self.size)
    }
}

/// Thresholds of the similarity criterion.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimilarityConfig {
    /// Two compute times are similar when `min/max ≥ compute_ratio`
    /// (paper: 85 %).
    pub compute_ratio: f64,
    /// Two volumes are similar when `min/max ≥ size_ratio`.
    pub size_ratio: f64,
    /// A phase is similar when at least this fraction of its events are
    /// similar (paper: 80 %, configurable).
    pub event_fraction: f64,
    /// Compute times below this floor (seconds) are treated as equal —
    /// they are noise, not PBB bodies.
    pub compute_floor: f64,
    /// Worker threads for the candidate×known-phase similarity matching
    /// inside `extract_phases`. `None` (the default) means one worker per
    /// available core; `Some(1)` forces the sequential path. The merge is
    /// deterministic: output is byte-identical for every setting.
    #[serde(default)]
    pub parallelism: Option<usize>,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        SimilarityConfig {
            compute_ratio: 0.85,
            size_ratio: 0.85,
            event_fraction: 0.80,
            compute_floor: 1e-7,
            parallelism: None,
        }
    }
}

impl SimilarityConfig {
    /// Resolve [`SimilarityConfig::parallelism`] to a concrete worker
    /// count, clamped to at least 1.
    pub fn effective_parallelism(&self) -> usize {
        self.parallelism
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
            .max(1)
    }

    fn ratio_similar(a: f64, b: f64, threshold: f64, floor: f64) -> bool {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        if hi <= floor {
            return true;
        }
        lo / hi >= threshold
    }

    /// Event-pair similarity (step 5b): same communication type and
    /// similar volume, plus similar preceding compute time. An absent cell
    /// ("0" communication) is similar to anything (step 5b, third rule).
    pub fn cells_similar(&self, a: Option<&CellSig>, b: Option<&CellSig>) -> bool {
        match (a, b) {
            (None, _) | (_, None) => true,
            (Some(a), Some(b)) => {
                a.kind == b.kind
                    && a.peer_offset == b.peer_offset
                    && Self::ratio_similar(a.size as f64, b.size as f64, self.size_ratio, 0.5)
                    && Self::ratio_similar(
                        a.compute_before,
                        b.compute_before,
                        self.compute_ratio,
                        self.compute_floor,
                    )
            }
        }
    }

    /// Phase-level similarity (steps 5a + 5c): equal tick counts, and the
    /// fraction of similar event cells reaches `event_fraction`. Patterns
    /// are `[tick][process]` matrices.
    pub fn phases_similar(
        &self,
        a: &[Vec<Option<CellSig>>],
        b: &[Vec<Option<CellSig>>],
    ) -> bool {
        if a.len() != b.len() {
            return false;
        }
        let mut total = 0usize;
        let mut similar = 0usize;
        for (ra, rb) in a.iter().zip(b) {
            debug_assert_eq!(ra.len(), rb.len());
            for (ca, cb) in ra.iter().zip(rb) {
                if ca.is_none() && cb.is_none() {
                    continue; // empty cells on both sides are not events
                }
                total += 1;
                if self.cells_similar(ca.as_ref(), cb.as_ref()) {
                    similar += 1;
                }
            }
        }
        if total == 0 {
            return true; // two all-empty patterns of the same length
        }
        similar as f64 / total as f64 >= self.event_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(kind: EventKind, peer: Option<i64>, size: u64, compute: f64) -> CellSig {
        CellSig {
            kind,
            peer_offset: peer,
            size,
            compute_before: compute,
        }
    }

    #[test]
    fn peer_offset_is_mapping_independent() {
        let mk = |process: u32, peer: u32| LogicalEvent {
            process,
            number: 0,
            kind: EventKind::Send,
            peer: Some(peer),
            size: 8,
            involved: 1,
            msg_id: 1,
            comm_id: 0,
            compute_before: 0.0,
            duration: 0.0,
            t_post: 0.0,
            t_complete: 0.0,
        };
        // rank 0 → 1 and rank 3 → 0 are both "next neighbour" in a ring of 4.
        assert_eq!(
            CellSig::of(&mk(0, 1), 4).peer_offset,
            CellSig::of(&mk(3, 0), 4).peer_offset
        );
    }

    #[test]
    fn identical_cells_are_similar() {
        let cfg = SimilarityConfig::default();
        let a = sig(EventKind::Send, Some(1), 100, 1.0);
        assert!(cfg.cells_similar(Some(&a), Some(&a)));
    }

    #[test]
    fn different_kind_is_dissimilar() {
        let cfg = SimilarityConfig::default();
        let a = sig(EventKind::Send, Some(1), 100, 1.0);
        let b = sig(EventKind::Recv, Some(1), 100, 1.0);
        assert!(!cfg.cells_similar(Some(&a), Some(&b)));
    }

    #[test]
    fn compute_time_within_85_percent_is_similar() {
        let cfg = SimilarityConfig::default();
        let a = sig(EventKind::Send, Some(1), 100, 1.0);
        let close = sig(EventKind::Send, Some(1), 100, 0.90);
        let far = sig(EventKind::Send, Some(1), 100, 0.5);
        assert!(cfg.cells_similar(Some(&a), Some(&close)));
        assert!(!cfg.cells_similar(Some(&a), Some(&far)));
    }

    #[test]
    fn absent_cell_is_similar_to_anything() {
        let cfg = SimilarityConfig::default();
        let a = sig(EventKind::Send, Some(1), 100, 1.0);
        assert!(cfg.cells_similar(None, Some(&a)));
        assert!(cfg.cells_similar(Some(&a), None));
        assert!(cfg.cells_similar(None, None));
    }

    #[test]
    fn tiny_compute_times_are_noise() {
        let cfg = SimilarityConfig::default();
        let a = sig(EventKind::Send, Some(1), 100, 1e-9);
        let b = sig(EventKind::Send, Some(1), 100, 5e-8);
        assert!(cfg.cells_similar(Some(&a), Some(&b)));
    }

    #[test]
    fn phase_similarity_requires_equal_length() {
        let cfg = SimilarityConfig::default();
        let row = vec![Some(sig(EventKind::Send, Some(1), 8, 0.1))];
        assert!(!cfg.phases_similar(std::slice::from_ref(&row), &[row.clone(), row.clone()]));
    }

    #[test]
    fn phase_similarity_counts_event_fraction() {
        let cfg = SimilarityConfig::default();
        let s = |c: f64| Some(sig(EventKind::Send, Some(1), 8, c));
        // 10 cells; 8 equal + 2 wildly different = 80% similar → similar.
        let a: Vec<Vec<Option<CellSig>>> = vec![(0..10).map(|_| s(1.0)).collect()];
        let mut b = a.clone();
        b[0][0] = s(100.0);
        b[0][1] = s(100.0);
        assert!(cfg.phases_similar(&a, &b));
        // 3 different of 10 = 70% similar → not similar.
        b[0][2] = s(100.0);
        assert!(!cfg.phases_similar(&a, &b));
    }

    #[test]
    fn empty_patterns_of_equal_length_are_similar() {
        let cfg = SimilarityConfig::default();
        let empty: Vec<Vec<Option<CellSig>>> = vec![vec![None, None]];
        assert!(cfg.phases_similar(&empty, &empty));
    }
}
