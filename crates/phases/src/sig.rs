//! Event signatures and the similarity criterion.

use pas2p_model::LogicalEvent;
use pas2p_trace::EventKind;
use serde::{Deserialize, Serialize};

/// The behavioural signature of one event cell in a phase pattern: what
/// PBB comparison looks at (paper §3.3 step 5b).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellSig {
    /// Communication type.
    pub kind: EventKind,
    /// Peer expressed as a rank *offset* (`peer − process`, wrapped), so
    /// that the same stencil exchanged by different ranks compares equal
    /// and the signature survives re-mapping.
    pub peer_offset: Option<i64>,
    /// Communication volume in bytes.
    pub size: u64,
    /// Computational time preceding the event (the PBB body), seconds on
    /// the base machine.
    pub compute_before: f64,
}

impl CellSig {
    /// Build the signature of a logical event.
    pub fn of(e: &LogicalEvent, nprocs: u32) -> CellSig {
        let peer_offset = e.peer.map(|p| {
            let n = nprocs as i64;
            let d = p as i64 - e.process as i64;
            d.rem_euclid(n)
        });
        CellSig {
            kind: e.kind,
            peer_offset,
            size: e.size,
            compute_before: e.compute_before,
        }
    }

    /// The *repetition key*: what "an event with the same type of
    /// communication" means for the phase-cutting rule (step 3/4). Volume
    /// is included so that, e.g., a boundary exchange and a bulk transpose
    /// to the same peer do not cut each other.
    pub fn repetition_key(&self) -> (EventKind, Option<i64>, u64) {
        (self.kind, self.peer_offset, self.size)
    }
}

/// Which implementation of the similarity criterion the merge loop of
/// `extract_phases` runs. Both produce byte-identical output — the
/// scalar walk is retained as the differential oracle the SoA kernel is
/// tested against (`tests/kernel_equivalence.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum SimilarityKernel {
    /// The reference cell-by-cell walk over `Vec<Vec<Option<CellSig>>>`
    /// patterns — slow, obviously correct, kept as the oracle.
    Scalar,
    /// Structure-of-arrays columns with banded prefilters and LSH
    /// bucketing (`crate::soa`) — the production kernel.
    #[default]
    Soa,
}

/// Thresholds of the similarity criterion.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimilarityConfig {
    /// Two compute times are similar when `min/max ≥ compute_ratio`
    /// (paper: 85 %).
    pub compute_ratio: f64,
    /// Two volumes are similar when `min/max ≥ size_ratio`.
    pub size_ratio: f64,
    /// A phase is similar when at least this fraction of its events are
    /// similar (paper: 80 %, configurable).
    pub event_fraction: f64,
    /// Compute times below this floor (seconds) are treated as equal —
    /// they are noise, not PBB bodies.
    pub compute_floor: f64,
    /// Worker threads for the candidate×known-phase similarity matching
    /// inside `extract_phases`. `None` (the default) means one worker per
    /// available core; `Some(1)` forces the sequential path. The merge is
    /// deterministic: output is byte-identical for every setting.
    #[serde(default)]
    pub parallelism: Option<usize>,
    /// Similarity-kernel implementation the merge loop runs. Excluded
    /// from the signature-store fingerprint (like `parallelism`): both
    /// kernels produce byte-identical output.
    #[serde(default)]
    pub kernel: SimilarityKernel,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        SimilarityConfig {
            compute_ratio: 0.85,
            size_ratio: 0.85,
            event_fraction: 0.80,
            compute_floor: 1e-7,
            parallelism: None,
            kernel: SimilarityKernel::default(),
        }
    }
}

impl SimilarityConfig {
    /// Resolve [`SimilarityConfig::parallelism`] to a concrete worker
    /// count, clamped to at least 1.
    pub fn effective_parallelism(&self) -> usize {
        self.parallelism
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
            .max(1)
    }

    pub(crate) fn ratio_similar(a: f64, b: f64, threshold: f64, floor: f64) -> bool {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        if hi <= floor {
            return true;
        }
        lo / hi >= threshold
    }

    /// Integer volume similarity: `min/max ≥ threshold`, computed exactly.
    ///
    /// Volumes are `u64`, and `a.size as f64` is lossy above 2^53 — two
    /// sizes differing by a few bytes rounded to the *same* f64 and always
    /// compared similar. Equality is checked on the integers first (this
    /// also makes two zero-size events similar by identity instead of via
    /// the compute-noise floor, which has no meaning for byte counts); the
    /// sub-2^53 range keeps the historical f64 division bit-for-bit; above
    /// it the ratio test runs as an exact u128 cross-multiplication
    /// against the threshold's own binary representation m·2⁻ˢ.
    pub(crate) fn size_similar(a: u64, b: u64, threshold: f64) -> bool {
        if a == b {
            return true;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        if threshold.is_nan() || threshold <= 0.0 {
            // Degenerate configs (0, negative, NaN) accept every pair,
            // matching the f64 path where lo/hi >= threshold always held.
            return true;
        }
        if threshold > 1.0 || lo == 0 {
            // lo < hi can never reach a ratio of 1, let alone above it.
            return false;
        }
        if hi < (1u64 << 53) {
            // Both sizes exact in f64: identical to the historical path.
            return lo as f64 / hi as f64 >= threshold;
        }
        // threshold = m · 2⁻ˢ with integer m < 2^53; for thresholds in
        // (0, 1], s ∈ [52, 1074]. Then lo/hi ≥ m·2⁻ˢ ⟺ lo·2ˢ ≥ m·hi,
        // decided exactly in u128 (m·hi < 2^117 always fits).
        let bits = threshold.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (m, s) = if exp == 0 {
            (frac, 1074u32)
        } else {
            (frac | (1u64 << 52), (1075 - exp) as u32)
        };
        let rhs = (m as u128) * (hi as u128);
        if s >= 118 {
            return true; // lo·2ˢ ≥ 2^118 > 2^117 > m·hi
        }
        let lo = lo as u128;
        if lo > (u128::MAX >> s) {
            return true; // lo·2ˢ overflows u128, so it exceeds m·hi
        }
        (lo << s) >= rhs
    }

    /// Event-pair similarity (step 5b): same communication type and
    /// similar volume, plus similar preceding compute time. An absent cell
    /// ("0" communication) is similar to anything (step 5b, third rule).
    pub fn cells_similar(&self, a: Option<&CellSig>, b: Option<&CellSig>) -> bool {
        match (a, b) {
            (None, _) | (_, None) => true,
            (Some(a), Some(b)) => {
                a.kind == b.kind
                    && a.peer_offset == b.peer_offset
                    && Self::size_similar(a.size, b.size, self.size_ratio)
                    && Self::ratio_similar(
                        a.compute_before,
                        b.compute_before,
                        self.compute_ratio,
                        self.compute_floor,
                    )
            }
        }
    }

    /// `(similar, total)` cell counts behind [`Self::phases_similar`],
    /// or `None` when the tick counts differ (the hard length gate).
    /// Exposed so the SoA kernel can be differential-tested against the
    /// exact counts, not just the boolean verdict.
    pub fn phase_similarity_score(
        &self,
        a: &[Vec<Option<CellSig>>],
        b: &[Vec<Option<CellSig>>],
    ) -> Option<(u64, u64)> {
        if a.len() != b.len() {
            return None;
        }
        let mut total = 0u64;
        let mut similar = 0u64;
        for (ra, rb) in a.iter().zip(b) {
            debug_assert_eq!(ra.len(), rb.len());
            for (ca, cb) in ra.iter().zip(rb) {
                if ca.is_none() && cb.is_none() {
                    continue; // empty cells on both sides are not events
                }
                total += 1;
                if self.cells_similar(ca.as_ref(), cb.as_ref()) {
                    similar += 1;
                }
            }
        }
        Some((similar, total))
    }

    /// Phase-level similarity (steps 5a + 5c): equal tick counts, and the
    /// fraction of similar event cells reaches `event_fraction`. Patterns
    /// are `[tick][process]` matrices.
    pub fn phases_similar(&self, a: &[Vec<Option<CellSig>>], b: &[Vec<Option<CellSig>>]) -> bool {
        match self.phase_similarity_score(a, b) {
            None => false,
            Some((_, 0)) => true, // two all-empty patterns of the same length
            Some((similar, total)) => similar as f64 / total as f64 >= self.event_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(kind: EventKind, peer: Option<i64>, size: u64, compute: f64) -> CellSig {
        CellSig {
            kind,
            peer_offset: peer,
            size,
            compute_before: compute,
        }
    }

    #[test]
    fn peer_offset_is_mapping_independent() {
        let mk = |process: u32, peer: u32| LogicalEvent {
            process,
            number: 0,
            kind: EventKind::Send,
            peer: Some(peer),
            size: 8,
            involved: 1,
            msg_id: 1,
            comm_id: 0,
            compute_before: 0.0,
            duration: 0.0,
            t_post: 0.0,
            t_complete: 0.0,
        };
        // rank 0 → 1 and rank 3 → 0 are both "next neighbour" in a ring of 4.
        assert_eq!(
            CellSig::of(&mk(0, 1), 4).peer_offset,
            CellSig::of(&mk(3, 0), 4).peer_offset
        );
    }

    #[test]
    fn identical_cells_are_similar() {
        let cfg = SimilarityConfig::default();
        let a = sig(EventKind::Send, Some(1), 100, 1.0);
        assert!(cfg.cells_similar(Some(&a), Some(&a)));
    }

    #[test]
    fn different_kind_is_dissimilar() {
        let cfg = SimilarityConfig::default();
        let a = sig(EventKind::Send, Some(1), 100, 1.0);
        let b = sig(EventKind::Recv, Some(1), 100, 1.0);
        assert!(!cfg.cells_similar(Some(&a), Some(&b)));
    }

    #[test]
    fn compute_time_within_85_percent_is_similar() {
        let cfg = SimilarityConfig::default();
        let a = sig(EventKind::Send, Some(1), 100, 1.0);
        let close = sig(EventKind::Send, Some(1), 100, 0.90);
        let far = sig(EventKind::Send, Some(1), 100, 0.5);
        assert!(cfg.cells_similar(Some(&a), Some(&close)));
        assert!(!cfg.cells_similar(Some(&a), Some(&far)));
    }

    #[test]
    fn absent_cell_is_similar_to_anything() {
        let cfg = SimilarityConfig::default();
        let a = sig(EventKind::Send, Some(1), 100, 1.0);
        assert!(cfg.cells_similar(None, Some(&a)));
        assert!(cfg.cells_similar(Some(&a), None));
        assert!(cfg.cells_similar(None, None));
    }

    #[test]
    fn tiny_compute_times_are_noise() {
        let cfg = SimilarityConfig::default();
        let a = sig(EventKind::Send, Some(1), 100, 1e-9);
        let b = sig(EventKind::Send, Some(1), 100, 5e-8);
        assert!(cfg.cells_similar(Some(&a), Some(&b)));
    }

    #[test]
    fn phase_similarity_requires_equal_length() {
        let cfg = SimilarityConfig::default();
        let row = vec![Some(sig(EventKind::Send, Some(1), 8, 0.1))];
        assert!(!cfg.phases_similar(std::slice::from_ref(&row), &[row.clone(), row.clone()]));
    }

    #[test]
    fn phase_similarity_counts_event_fraction() {
        let cfg = SimilarityConfig::default();
        let s = |c: f64| Some(sig(EventKind::Send, Some(1), 8, c));
        // 10 cells; 8 equal + 2 wildly different = 80% similar → similar.
        let a: Vec<Vec<Option<CellSig>>> = vec![(0..10).map(|_| s(1.0)).collect()];
        let mut b = a.clone();
        b[0][0] = s(100.0);
        b[0][1] = s(100.0);
        assert!(cfg.phases_similar(&a, &b));
        // 3 different of 10 = 70% similar → not similar.
        b[0][2] = s(100.0);
        assert!(!cfg.phases_similar(&a, &b));
    }

    #[test]
    fn zero_sizes_are_similar_by_identity() {
        let cfg = SimilarityConfig::default();
        let a = sig(EventKind::Send, Some(1), 0, 1.0);
        let b = sig(EventKind::Send, Some(1), 0, 1.0);
        assert!(cfg.cells_similar(Some(&a), Some(&b)));
        // A zero-size against a nonzero size is ratio 0: dissimilar. The
        // old 0.5-floor path happened to agree for size 1 but for the
        // wrong reason; pin the exact-comparison behaviour.
        let c = sig(EventKind::Send, Some(1), 1, 1.0);
        assert!(!cfg.cells_similar(Some(&a), Some(&c)));
    }

    #[test]
    fn u64_max_sizes_compare_exactly() {
        let cfg = SimilarityConfig::default();
        let a = sig(EventKind::Send, Some(1), u64::MAX, 1.0);
        assert!(cfg.cells_similar(Some(&a), Some(&a)));
        // Adjacent huge sizes are within any ratio threshold < 1.
        let b = sig(EventKind::Send, Some(1), u64::MAX - 1, 1.0);
        assert!(cfg.cells_similar(Some(&a), Some(&b)));
        // But a strict threshold of 1.0 must reject them: as f64 both
        // sizes round to the same value and the lossy path said similar.
        let strict = SimilarityConfig {
            size_ratio: 1.0,
            ..SimilarityConfig::default()
        };
        assert!(!strict.cells_similar(Some(&a), Some(&b)));
        assert!(strict.cells_similar(Some(&a), Some(&a)));
    }

    #[test]
    fn sizes_above_2_pow_53_keep_precision() {
        // 2^60 and 2^60 + 1 are indistinguishable in f64.
        let strict = SimilarityConfig {
            size_ratio: 1.0,
            ..SimilarityConfig::default()
        };
        let a = sig(EventKind::Send, Some(1), 1u64 << 60, 1.0);
        let b = sig(EventKind::Send, Some(1), (1u64 << 60) + 1, 1.0);
        assert!(!strict.cells_similar(Some(&a), Some(&b)));
        // At the default 85% threshold the exact path still admits a
        // genuine near-ratio (8/9 ≈ 0.889) and rejects a far one (1/2).
        let cfg = SimilarityConfig::default();
        let near = sig(EventKind::Send, Some(1), (1u64 << 60) + (1u64 << 57), 1.0);
        let far = sig(EventKind::Send, Some(1), 1u64 << 61, 1.0);
        assert!(cfg.cells_similar(Some(&a), Some(&near)));
        assert!(!cfg.cells_similar(Some(&a), Some(&far)));
    }

    #[test]
    fn size_similarity_below_2_pow_53_matches_f64_path() {
        // The fix must not disturb the historical in-range behaviour that
        // golden outputs depend on: spot-check the f64 division against
        // the integer entry point across the threshold boundary.
        let cfg = SimilarityConfig::default();
        let s = |n: u64| sig(EventKind::Send, Some(1), n, 1.0);
        for (a, b, expect) in [
            (100, 85, true),
            (100, 84, false),
            (1u64 << 52, (1u64 << 52) - 1, true),
            (7, 8, true),
            (1, 2, false),
        ] {
            assert_eq!(
                cfg.cells_similar(Some(&s(a)), Some(&s(b))),
                expect,
                "sizes {a} vs {b}"
            );
        }
    }

    #[test]
    fn empty_patterns_of_equal_length_are_similar() {
        let cfg = SimilarityConfig::default();
        let empty: Vec<Vec<Option<CellSig>>> = vec![vec![None, None]];
        assert!(cfg.phases_similar(&empty, &empty));
    }
}
