//! The phase-extraction algorithm (paper §3.3, Fig 6, Appendix B).
//!
//! Extraction runs in two stages. A sequential *repetition scan* cuts the
//! logical trace into candidate windows (steps 1–4). A *merge loop* then
//! dedupes each candidate against the known phases by similarity (step 5),
//! in discovery order. The candidate×known-phase comparisons inside the
//! merge are the TFAT hot loop (Table 8) and can fan out over a worker
//! pool ([`SimilarityConfig::parallelism`]): the known phases are chunked
//! across workers, each worker reports its chunk-local first match, and
//! the merge takes the globally smallest matching index — exactly the
//! phase the sequential first-match walk would have picked. Output is
//! therefore byte-identical to the sequential path for any worker count.

use crate::sig::{CellSig, SimilarityConfig, SimilarityKernel};
use crate::soa::{SoaIndex, SoaPattern};
use pas2p_model::LogicalTrace;
use pas2p_trace::EventKind;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// A phase pattern: `pattern[tick][process]` cells.
pub type Pattern = Vec<Vec<Option<CellSig>>>;

/// One concrete occurrence of a phase in the logical trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Occurrence {
    /// First tick of the occurrence (inclusive).
    pub start_tick: usize,
    /// One past the last tick (exclusive).
    pub end_tick: usize,
    /// Global boundary time at the start (base-machine seconds).
    pub t_start: f64,
    /// Global boundary time at the end.
    pub t_end: f64,
    /// Per-process communication-event counts at the start boundary — the
    /// coordinates the phase table uses to locate the phase in a re-run
    /// (Fig 7's "number of sends where the phase occurs").
    pub start_counts: Vec<u64>,
    /// Per-process counts at the end boundary.
    pub end_counts: Vec<u64>,
}

impl Occurrence {
    /// Wall-clock span of this occurrence on the base machine. Negative
    /// spans (a boundary-ordering bug upstream) clamp to zero; the clamp
    /// is counted under `extract.negative_span` when one is constructed.
    pub fn duration(&self) -> f64 {
        (self.t_end - self.t_start).max(0.0)
    }
}

/// A unique phase: a representative tick×process pattern plus every
/// occurrence that matched it by similarity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Phase identifier (dense, in discovery order).
    pub id: u32,
    /// Representative pattern: `pattern[tick][process]`.
    pub pattern: Pattern,
    /// Repetition count — the paper's *weight*.
    pub weight: u64,
    /// All matched occurrences, in trace order.
    pub occurrences: Vec<Occurrence>,
}

impl Phase {
    /// Phase length in ticks.
    pub fn len_ticks(&self) -> usize {
        self.pattern.len()
    }

    /// Mean occurrence duration on the base machine — the PhaseET the
    /// analysis stage estimates before the signature measures it on a
    /// target.
    pub fn mean_duration(&self) -> f64 {
        if self.occurrences.is_empty() {
            return 0.0;
        }
        self.occurrences.iter().map(|o| o.duration()).sum::<f64>() / self.occurrences.len() as f64
    }

    /// `weight × mean duration`: this phase's share of the application
    /// execution time.
    pub fn contribution(&self) -> f64 {
        self.weight as f64 * self.mean_duration()
    }

    /// Number of communication events in one occurrence of the phase.
    pub fn events_per_occurrence(&self) -> usize {
        self.pattern
            .iter()
            .map(|row| row.iter().filter(|c| c.is_some()).count())
            .sum()
    }
}

/// Result of running phase extraction over a logical trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseAnalysis {
    /// Number of processes.
    pub nprocs: u32,
    /// All unique phases, in discovery order.
    pub phases: Vec<Phase>,
    /// Application execution time on the base machine (the last global
    /// boundary), seconds.
    pub aet: f64,
    /// Host wall-clock seconds the extraction took — a component of the
    /// paper's trace-file analysis time (TFAT, Table 8). Sourced from the
    /// obs stage profiler (`extract_phases` stage), so this value and the
    /// recorded stage profile cannot diverge.
    pub analysis_seconds: f64,
    /// Occurrences whose global span came out negative and were clamped
    /// to zero duration — evidence of clock trouble in the input. Also
    /// counted under `extract.negative_span`; `pas2p-check` raises
    /// `MODEL-SPAN-001` when nonzero.
    #[serde(default)]
    pub negative_spans: u64,
}

impl PhaseAnalysis {
    /// Total number of unique phases (Table 8's "Total Phases").
    pub fn total_phases(&self) -> usize {
        self.phases.len()
    }

    /// Phases whose contribution reaches `threshold` (paper: 0.01 = 1 %)
    /// of the application execution time — the signature constituents.
    pub fn relevant(&self, threshold: f64) -> Vec<&Phase> {
        self.phases
            .iter()
            .filter(|p| p.contribution() >= threshold * self.aet)
            .collect()
    }

    /// Σ weight × mean duration over all phases. Occurrences tile the
    /// trace, so this reconstructs the AET (up to duplicate-occurrence
    /// averaging inside a phase).
    pub fn reconstructed_aet(&self) -> f64 {
        self.phases.iter().map(|p| p.contribution()).sum()
    }

    /// Coverage of the relevant phases: which fraction of the AET the
    /// signature will represent.
    pub fn relevant_coverage(&self, threshold: f64) -> f64 {
        if self.aet <= 0.0 {
            return 0.0;
        }
        self.relevant(threshold)
            .iter()
            .map(|p| p.contribution())
            .sum::<f64>()
            / self.aet
    }
}

/// Below this many known phases a candidate is matched inline on the
/// calling thread: chunk dispatch costs more than the scan itself.
const PAR_MIN_KNOWN: usize = 8;

/// Extract phases from a logical trace (the paper's six-step algorithm).
pub fn extract_phases(lt: &LogicalTrace, cfg: &SimilarityConfig) -> PhaseAnalysis {
    let mut st = pas2p_obs::stage("extract_phases");
    let ticks = &lt.ticks;

    // Global boundary times: boundary[k] = latest completion among ticks
    // < k. Occurrences tile [boundary[s], boundary[e]).
    let mut boundary = Vec::with_capacity(ticks.len() + 1);
    boundary.push(0.0f64);
    for tick in ticks {
        let m = tick
            .events
            .iter()
            .map(|e| e.t_complete)
            .fold(*boundary.last().unwrap(), f64::max);
        boundary.push(m);
    }

    let windows = scan_windows(lt);

    let mut merger = Merger {
        lt,
        cfg,
        nprocs: lt.nprocs as usize,
        boundary,
        running_counts: vec![0u64; lt.nprocs as usize],
        phases: Vec::new(),
        known: Vec::new(),
        index: SoaIndex::new(),
        comparisons: 0,
        dedupe_hits: 0,
        par_compares: 0,
        band_rejects: 0,
        lsh_skipped: 0,
        soa_compares: 0,
        negative_spans: 0,
    };

    let workers = cfg.effective_parallelism();
    match cfg.kernel {
        SimilarityKernel::Scalar if workers > 1 && !windows.is_empty() => {
            merger.merge_parallel(&windows, workers);
        }
        SimilarityKernel::Scalar => {
            for &(s, e) in &windows {
                let (pattern, occurrence) = merger.candidate(s, e);
                let hit = merger.first_match(&pattern);
                merger.commit(hit, pattern, occurrence);
            }
        }
        SimilarityKernel::Soa if workers > 1 && !windows.is_empty() => {
            merger.merge_soa_parallel(&windows, workers);
        }
        SimilarityKernel::Soa => {
            merger.merge_soa_sequential(&windows);
        }
    }

    let aet = *merger.boundary.last().unwrap();
    st.items(ticks.len() as u64);
    let analysis = PhaseAnalysis {
        nprocs: lt.nprocs,
        phases: merger.phases,
        aet,
        analysis_seconds: st.finish(),
        negative_spans: merger.negative_spans,
    };
    if pas2p_obs::enabled() {
        pas2p_obs::counter("phases.ticks_scanned").add(ticks.len() as u64);
        pas2p_obs::counter("phases.unique").add(analysis.total_phases() as u64);
        pas2p_obs::counter("phases.occurrences")
            .add(analysis.phases.iter().map(|p| p.weight).sum());
        pas2p_obs::counter("phases.similarity_comparisons").add(merger.comparisons);
        pas2p_obs::counter("phases.dedupe_hits").add(merger.dedupe_hits);
        if merger.par_compares > 0 {
            pas2p_obs::counter("extract.par.compares").add(merger.par_compares);
        }
        if matches!(cfg.kernel, SimilarityKernel::Soa) {
            // Always registered (even at 0) so the SoA kernel's skip
            // behaviour is visible in every metrics snapshot.
            pas2p_obs::counter("extract.band.rejects").add(merger.band_rejects);
            pas2p_obs::counter("extract.lsh.skipped").add(merger.lsh_skipped);
            pas2p_obs::counter("extract.soa.compares").add(merger.soa_compares);
        }
        if merger.negative_spans > 0 {
            pas2p_obs::counter("extract.negative_span").add(merger.negative_spans);
        }
        pas2p_obs::gauge("phases.analysis_seconds").set(analysis.analysis_seconds);
    }
    analysis
}

/// Steps 1–4: the sequential repetition scan. Grows a window from
/// `start`, cutting when a communication type repeats within a process,
/// and returns the candidate windows `[s, e)` in trace order.
fn scan_windows(lt: &LogicalTrace) -> Vec<(usize, usize)> {
    /// Repetition key of an event within the growing window (process plus
    /// the communication-type triple of `CellSig::repetition_key`).
    type RepKey = (u32, (EventKind, Option<i64>, u64));

    let ticks = &lt.ticks;
    let mut windows = Vec::new();
    let mut push = |s: usize, e: usize| {
        if s < e {
            windows.push((s, e));
        }
    };

    let mut start = 0usize;
    let mut seen: HashMap<RepKey, usize> = HashMap::new();
    #[allow(clippy::needless_range_loop)] // tick index doubles as boundary id
    for t in 0..ticks.len() {
        let mut first_rep: Option<usize> = None;
        for e in &ticks[t].events {
            let key = (e.process, CellSig::of(e, lt.nprocs).repetition_key());
            if let Some(&first) = seen.get(&key) {
                first_rep = Some(match first_rep {
                    None => first,
                    Some(f) => f.min(first),
                });
            }
        }
        if let Some(first) = first_rep {
            if first == start {
                // Step 4a: the repeated event's first occurrence sits at
                // the Startpoint — the candidate closes just before the
                // repetition.
                push(start, t);
            } else {
                // Step 4b: split into phase a and phase b.
                push(start, first);
                push(first, t);
            }
            start = t;
            seen.clear();
        }
        for e in &ticks[t].events {
            let key = (e.process, CellSig::of(e, lt.nprocs).repetition_key());
            seen.entry(key).or_insert(t);
        }
    }
    push(start, ticks.len());
    windows
}

/// A unit of matching work: compare one candidate against a contiguous
/// chunk of the known phases starting at global index `base`.
struct MatchTask {
    round: usize,
    base: usize,
    known: Vec<Arc<Pattern>>,
    candidate: Arc<Pattern>,
}

/// A worker's answer for one chunk: the global index of the chunk-local
/// first match (if any) and how many comparisons the scan performed.
struct MatchResult {
    round: usize,
    hit: Option<usize>,
    compares: u64,
}

/// SoA-kernel unit of matching work: one chunk of a candidate's LSH
/// bucket, carried as `(global index, pattern)` pairs in ascending
/// index order.
struct SoaMatchTask {
    round: usize,
    entries: Vec<(u32, Arc<SoaPattern>)>,
    candidate: Arc<SoaPattern>,
}

/// A worker's answer for one SoA chunk.
struct SoaMatchResult {
    round: usize,
    hit: Option<u32>,
    compares: u64,
    band_rejects: u64,
}

/// Step 5: dedupe candidate windows into phases, in discovery order.
struct Merger<'a> {
    lt: &'a LogicalTrace,
    cfg: &'a SimilarityConfig,
    nprocs: usize,
    boundary: Vec<f64>,
    /// Per-process event counts at the current save boundary. Saves are
    /// contiguous, so this always equals the counts at the next start.
    running_counts: Vec<u64>,
    phases: Vec<Phase>,
    /// Shared mirror of `phases[i].pattern`, cheap to hand to workers
    /// (scalar kernel only).
    known: Vec<Arc<Pattern>>,
    /// Columnar mirror of the known phases with LSH buckets (SoA kernel
    /// only).
    index: SoaIndex,
    /// Similarity comparisons the *sequential* first-match walk would
    /// perform (step 5 cost driver) — identical for every worker count
    /// and for both kernels.
    comparisons: u64,
    /// Comparisons actually executed by pool workers (chunk scans do not
    /// stop at the global first match, so this can exceed `comparisons`).
    par_compares: u64,
    /// Candidate×known pairs the band prefilter rejected (SoA kernel).
    band_rejects: u64,
    /// Candidate×known pairs never examined because the known phase sits
    /// in a different LSH bucket (SoA kernel).
    lsh_skipped: u64,
    /// Full SoA comparisons actually executed (after band + LSH skips).
    soa_compares: u64,
    /// Windows absorbed into an existing phase instead of creating one.
    dedupe_hits: u64,
    /// Occurrences constructed with `t_end < t_start`.
    negative_spans: u64,
}

impl Merger<'_> {
    /// Build the pattern and occurrence of the window `[s, e)`, advancing
    /// the running per-process event counts.
    fn candidate(&mut self, s: usize, e: usize) -> (Arc<Pattern>, Occurrence) {
        let pattern = Arc::new(self.pattern_of(s, e));
        (pattern, self.occurrence_of(s, e))
    }

    /// Build the occurrence of the window `[s, e)`, advancing the running
    /// per-process event counts.
    fn occurrence_of(&mut self, s: usize, e: usize) -> Occurrence {
        let start_counts = self.running_counts.clone();
        for tick in &self.lt.ticks[s..e] {
            for ev in &tick.events {
                self.running_counts[ev.process as usize] += 1;
            }
        }
        let (t_start, t_end) = (self.boundary[s], self.boundary[e]);
        if t_end < t_start {
            self.negative_spans += 1;
        }
        Occurrence {
            start_tick: s,
            end_tick: e,
            t_start,
            t_end,
            start_counts,
            end_counts: self.running_counts.clone(),
        }
    }

    /// Sequential first match among the known phases.
    fn first_match(&self, candidate: &Pattern) -> Option<usize> {
        self.known
            .iter()
            .position(|k| self.cfg.phases_similar(k, candidate))
    }

    /// Fold a first-match result into the phase list. `comparisons`
    /// advances by the sequential-equivalent count so the counter is
    /// identical whichever path produced `hit`.
    fn commit(&mut self, hit: Option<usize>, pattern: Arc<Pattern>, occurrence: Occurrence) {
        self.comparisons += match hit {
            Some(i) => i as u64 + 1,
            None => self.known.len() as u64,
        };
        match hit {
            Some(i) => {
                self.dedupe_hits += 1;
                let phase = &mut self.phases[i];
                phase.weight += 1;
                phase.occurrences.push(occurrence);
            }
            None => {
                self.phases.push(Phase {
                    id: self.phases.len() as u32,
                    pattern: (*pattern).clone(),
                    weight: 1,
                    occurrences: vec![occurrence],
                });
                self.known.push(pattern);
            }
        }
    }

    /// The parallel merge: a scoped worker pool scans chunks of the known
    /// phases; the merge thread takes the minimum matching global index,
    /// which is exactly the sequential first match.
    fn merge_parallel(&mut self, windows: &[(usize, usize)], workers: usize) {
        let (task_tx, task_rx) = crossbeam::channel::unbounded::<MatchTask>();
        let (res_tx, res_rx) = crossbeam::channel::unbounded::<MatchResult>();
        let cfg = *self.cfg;
        std::thread::scope(|scope| {
            for w in 0..workers {
                let rx = task_rx.clone();
                let tx = res_tx.clone();
                scope.spawn(move || {
                    // Worker-pool lane on the timeline; dropped by the
                    // normalized export (lane count varies with the
                    // parallelism knob, so it cannot be deterministic).
                    let worker_span = if pas2p_obs::tracing_enabled() {
                        Some(pas2p_obs::trace_span(
                            pas2p_obs::CAT_HOST_WORKER,
                            &format!("extract worker {w}"),
                        ))
                    } else {
                        None
                    };
                    let mut tasks_done = 0u64;
                    let mut worker_compares = 0u64;
                    while let Ok(task) = rx.recv() {
                        let mut compares = 0u64;
                        let mut hit = None;
                        for (i, known) in task.known.iter().enumerate() {
                            compares += 1;
                            if cfg.phases_similar(known, &task.candidate) {
                                hit = Some(task.base + i);
                                break;
                            }
                        }
                        tasks_done += 1;
                        worker_compares += compares;
                        if tx
                            .send(MatchResult {
                                round: task.round,
                                hit,
                                compares,
                            })
                            .is_err()
                        {
                            break;
                        }
                    }
                    if let Some(span) = worker_span {
                        span.finish_with(vec![
                            ("tasks", tasks_done.to_string()),
                            ("compares", worker_compares.to_string()),
                        ]);
                        // The scope unblocks before this thread's TLS
                        // destructors run — flush while it still waits.
                        pas2p_obs::events::flush();
                    }
                });
            }
            drop(task_rx);
            drop(res_tx);

            for (round, &(s, e)) in windows.iter().enumerate() {
                let (pattern, occurrence) = self.candidate(s, e);
                let hit = if self.known.len() >= PAR_MIN_KNOWN.max(workers) {
                    let chunk = self.known.len().div_ceil(workers);
                    let mut sent = 0usize;
                    for (ci, slice) in self.known.chunks(chunk).enumerate() {
                        let task = MatchTask {
                            round,
                            base: ci * chunk,
                            known: slice.to_vec(),
                            candidate: Arc::clone(&pattern),
                        };
                        assert!(task_tx.send(task).is_ok(), "extract worker pool alive");
                        sent += 1;
                    }
                    let mut best: Option<usize> = None;
                    for _ in 0..sent {
                        let r = res_rx.recv().expect("extract worker result");
                        debug_assert_eq!(r.round, round);
                        self.par_compares += r.compares;
                        best = match (best, r.hit) {
                            (Some(b), Some(h)) => Some(b.min(h)),
                            (b, h) => b.or(h),
                        };
                    }
                    best
                } else {
                    self.first_match(&pattern)
                };
                self.commit(hit, pattern, occurrence);
            }
            drop(task_tx);
        });
    }

    /// Fold a SoA first-match result into the phase list. The AoS
    /// representative pattern is only materialized on a miss — dedupe
    /// hits (the common case) never touch the AoS layout at all.
    fn commit_soa(
        &mut self,
        hit: Option<usize>,
        candidate: Arc<SoaPattern>,
        s: usize,
        e: usize,
        occurrence: Occurrence,
    ) {
        self.comparisons += match hit {
            Some(i) => i as u64 + 1,
            None => self.index.len() as u64,
        };
        match hit {
            Some(i) => {
                self.dedupe_hits += 1;
                let phase = &mut self.phases[i];
                phase.weight += 1;
                phase.occurrences.push(occurrence);
            }
            None => {
                self.phases.push(Phase {
                    id: self.phases.len() as u32,
                    pattern: self.pattern_of(s, e),
                    weight: 1,
                    occurrences: vec![occurrence],
                });
                self.index.push(candidate);
            }
        }
    }

    /// Step 5 on the SoA kernel, sequentially: bucket lookup, band
    /// prefilter, columnar compare — same first match as the scalar walk.
    fn merge_soa_sequential(&mut self, windows: &[(usize, usize)]) {
        for &(s, e) in windows {
            let occurrence = self.occurrence_of(s, e);
            let candidate = Arc::new(SoaPattern::from_ticks(self.lt, s, e));
            let (hit, stats) = self.index.first_match(self.cfg, &candidate);
            self.soa_compares += stats.compares;
            self.band_rejects += stats.band_rejects;
            self.lsh_skipped += stats.lsh_skipped;
            self.commit_soa(hit, candidate, s, e, occurrence);
        }
    }

    /// The parallel SoA merge: only the candidate's LSH bucket is
    /// chunked across the pool (other buckets cannot match), each worker
    /// reports its chunk-local first match, and the merge takes the
    /// smallest global index — bucket entries ascend, so that is exactly
    /// the sequential first match.
    fn merge_soa_parallel(&mut self, windows: &[(usize, usize)], workers: usize) {
        let (task_tx, task_rx) = crossbeam::channel::unbounded::<SoaMatchTask>();
        let (res_tx, res_rx) = crossbeam::channel::unbounded::<SoaMatchResult>();
        let cfg = *self.cfg;
        std::thread::scope(|scope| {
            for w in 0..workers {
                let rx = task_rx.clone();
                let tx = res_tx.clone();
                scope.spawn(move || {
                    // Worker-pool lane on the timeline; dropped by the
                    // normalized export (lane count varies with the
                    // parallelism knob, so it cannot be deterministic).
                    let worker_span = if pas2p_obs::tracing_enabled() {
                        Some(pas2p_obs::trace_span(
                            pas2p_obs::CAT_HOST_WORKER,
                            &format!("extract worker {w}"),
                        ))
                    } else {
                        None
                    };
                    let mut tasks_done = 0u64;
                    let mut worker_compares = 0u64;
                    while let Ok(task) = rx.recv() {
                        let mut compares = 0u64;
                        let mut band_rejects = 0u64;
                        let mut hit = None;
                        for (idx, known) in &task.entries {
                            if !cfg.band_admits(known, &task.candidate) {
                                band_rejects += 1;
                                continue;
                            }
                            compares += 1;
                            if cfg.soa_phases_similar(known, &task.candidate) {
                                hit = Some(*idx);
                                break;
                            }
                        }
                        tasks_done += 1;
                        worker_compares += compares;
                        if tx
                            .send(SoaMatchResult {
                                round: task.round,
                                hit,
                                compares,
                                band_rejects,
                            })
                            .is_err()
                        {
                            break;
                        }
                    }
                    if let Some(span) = worker_span {
                        span.finish_with(vec![
                            ("tasks", tasks_done.to_string()),
                            ("compares", worker_compares.to_string()),
                        ]);
                        // The scope unblocks before this thread's TLS
                        // destructors run — flush while it still waits.
                        pas2p_obs::events::flush();
                    }
                });
            }
            drop(task_rx);
            drop(res_tx);

            for (round, &(s, e)) in windows.iter().enumerate() {
                let occurrence = self.occurrence_of(s, e);
                let candidate = Arc::new(SoaPattern::from_ticks(self.lt, s, e));
                let bucket_len = self.index.bucket(candidate.sketch()).len();
                let hit = if bucket_len >= PAR_MIN_KNOWN.max(workers) {
                    self.lsh_skipped += (self.index.len() - bucket_len) as u64;
                    let entries: Vec<(u32, Arc<SoaPattern>)> = self
                        .index
                        .bucket(candidate.sketch())
                        .iter()
                        .map(|&i| (i, Arc::clone(self.index.get(i as usize))))
                        .collect();
                    let chunk = entries.len().div_ceil(workers);
                    let mut sent = 0usize;
                    for slice in entries.chunks(chunk) {
                        let task = SoaMatchTask {
                            round,
                            entries: slice.to_vec(),
                            candidate: Arc::clone(&candidate),
                        };
                        assert!(task_tx.send(task).is_ok(), "extract worker pool alive");
                        sent += 1;
                    }
                    let mut best: Option<u32> = None;
                    for _ in 0..sent {
                        let r = res_rx.recv().expect("extract worker result");
                        debug_assert_eq!(r.round, round);
                        self.par_compares += r.compares;
                        self.soa_compares += r.compares;
                        self.band_rejects += r.band_rejects;
                        best = match (best, r.hit) {
                            (Some(b), Some(h)) => Some(b.min(h)),
                            (b, h) => b.or(h),
                        };
                    }
                    best.map(|b| b as usize)
                } else {
                    let (hit, stats) = self.index.first_match(self.cfg, &candidate);
                    self.soa_compares += stats.compares;
                    self.band_rejects += stats.band_rejects;
                    self.lsh_skipped += stats.lsh_skipped;
                    hit
                };
                self.commit_soa(hit, candidate, s, e, occurrence);
            }
            drop(task_tx);
        });
    }

    fn pattern_of(&self, s: usize, e: usize) -> Pattern {
        self.lt.ticks[s..e]
            .iter()
            .map(|tick| {
                let mut row = vec![None; self.nprocs];
                for ev in &tick.events {
                    row[ev.process as usize] = Some(CellSig::of(ev, self.lt.nprocs));
                }
                row
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_model::{LogicalEvent, LogicalTrace, Tick};

    /// Build a logical trace directly from (tick, process, kind, size,
    /// compute) tuples for precise algorithm tests.
    fn lt_of(nprocs: u32, cells: &[(usize, u32, EventKind, u64, f64)]) -> LogicalTrace {
        let max_tick = cells.iter().map(|c| c.0).max().unwrap_or(0);
        let mut ticks = vec![Tick::default(); max_tick + 1];
        let mut numbers = vec![0u64; nprocs as usize];
        let mut clock = 0.0;
        for &(t, p, kind, size, compute) in cells {
            clock += compute + 0.001;
            ticks[t].events.push(LogicalEvent {
                process: p,
                number: numbers[p as usize],
                kind,
                peer: Some((p + 1) % nprocs),
                size,
                involved: 1,
                msg_id: 0,
                comm_id: 0,
                compute_before: compute,
                duration: 0.001,
                t_post: clock - 0.001,
                t_complete: clock,
            });
            numbers[p as usize] += 1;
        }
        for t in &mut ticks {
            t.events.sort_by_key(|e| e.process);
        }
        LogicalTrace { nprocs, ticks }
    }

    #[test]
    fn repetition_at_startpoint_closes_phase() {
        // P0: Send, Recv, Send, Recv, ... — the second Send repeats the
        // type first seen at the startpoint, closing a 2-tick phase.
        let cells: Vec<_> = (0..8)
            .map(|i| {
                (
                    i,
                    0u32,
                    if i % 2 == 0 {
                        EventKind::Send
                    } else {
                        EventKind::Recv
                    },
                    64u64,
                    0.01f64,
                )
            })
            .collect();
        let analysis = extract_phases(&lt_of(1, &cells), &SimilarityConfig::default());
        assert_eq!(analysis.total_phases(), 1, "{:#?}", analysis.phases);
        let p = &analysis.phases[0];
        assert_eq!(p.len_ticks(), 2);
        assert_eq!(p.weight, 4);
    }

    #[test]
    fn repetition_mid_phase_splits_into_a_and_b() {
        // Prologue of unique events, then an iterative pattern: the split
        // rule must produce a prologue phase and an iteration phase.
        let mut cells = vec![
            (
                0,
                0,
                EventKind::Coll(pas2p_trace::CollClass::Bcast),
                8,
                0.02,
            ),
            (1, 0, EventKind::Send, 999, 0.03),
        ];
        // Iterations: Send(64)/Recv(64) pairs.
        for i in 0..6 {
            cells.push((
                2 + i,
                0,
                if i % 2 == 0 {
                    EventKind::Send
                } else {
                    EventKind::Recv
                },
                64,
                0.01,
            ));
        }
        let analysis = extract_phases(&lt_of(1, &cells), &SimilarityConfig::default());
        // Expect: prologue phase (bcast + send999 [+ first iteration head])
        // and a repeated iteration phase with weight ≥ 2.
        assert!(analysis.total_phases() >= 2);
        let max_weight = analysis.phases.iter().map(|p| p.weight).max().unwrap();
        assert!(max_weight >= 2, "{:#?}", analysis.phases);
    }

    #[test]
    fn occurrences_tile_the_trace() {
        let cells: Vec<_> = (0..10)
            .map(|i| {
                (
                    i,
                    0u32,
                    if i % 2 == 0 {
                        EventKind::Send
                    } else {
                        EventKind::Recv
                    },
                    64u64,
                    0.01f64,
                )
            })
            .collect();
        let lt = lt_of(1, &cells);
        let analysis = extract_phases(&lt, &SimilarityConfig::default());
        let mut spans: Vec<(usize, usize)> = analysis
            .phases
            .iter()
            .flat_map(|p| p.occurrences.iter().map(|o| (o.start_tick, o.end_tick)))
            .collect();
        spans.sort_unstable();
        assert_eq!(spans.first().unwrap().0, 0);
        assert_eq!(spans.last().unwrap().1, lt.len());
        for w in spans.windows(2) {
            assert_eq!(w[0].1, w[1].0, "occurrences must be contiguous");
        }
        // Σ weight × meanET == AET for perfectly regular traces.
        assert!((analysis.reconstructed_aet() - analysis.aet).abs() < 1e-9);
    }

    #[test]
    fn event_counts_track_occurrence_boundaries() {
        let cells: Vec<_> = (0..6)
            .map(|i| {
                (
                    i,
                    0u32,
                    if i % 2 == 0 {
                        EventKind::Send
                    } else {
                        EventKind::Recv
                    },
                    64u64,
                    0.01f64,
                )
            })
            .collect();
        let analysis = extract_phases(&lt_of(1, &cells), &SimilarityConfig::default());
        let p = &analysis.phases[0];
        let occ = &p.occurrences[1];
        assert_eq!(occ.start_counts, vec![2]);
        assert_eq!(occ.end_counts, vec![4]);
    }

    #[test]
    fn single_shot_pattern_yields_one_phase_weight_one() {
        // The paper §6: an application with no communication
        // repetitiveness yields one phase of weight 1 covering everything.
        let cells = vec![
            (0, 0, EventKind::Send, 10, 0.01),
            (1, 0, EventKind::Send, 20, 0.01),
            (2, 0, EventKind::Send, 40, 0.01),
            (3, 0, EventKind::Recv, 80, 0.01),
        ];
        let analysis = extract_phases(&lt_of(1, &cells), &SimilarityConfig::default());
        assert_eq!(analysis.total_phases(), 1);
        assert_eq!(analysis.phases[0].weight, 1);
        assert!((analysis.phases[0].contribution() - analysis.aet).abs() < 1e-12);
    }

    #[test]
    fn relevant_filters_by_contribution() {
        // Iterative pattern dominating + a tiny unique prologue.
        let mut cells = vec![(0, 0, EventKind::Send, 999, 1e-6)];
        for i in 0..20 {
            cells.push((
                1 + i,
                0,
                if i % 2 == 0 {
                    EventKind::Send
                } else {
                    EventKind::Recv
                },
                64,
                0.05,
            ));
        }
        let analysis = extract_phases(&lt_of(1, &cells), &SimilarityConfig::default());
        let relevant = analysis.relevant(0.01);
        assert!(!relevant.is_empty());
        assert!(relevant.len() < analysis.total_phases() || analysis.total_phases() == 1);
        assert!(analysis.relevant_coverage(0.01) > 0.9);
    }

    #[test]
    fn multi_process_phases_span_processes() {
        // 2 processes alternating Send/Recv in lockstep.
        let mut cells = Vec::new();
        for i in 0..8 {
            let kind = if i % 2 == 0 {
                EventKind::Send
            } else {
                EventKind::Recv
            };
            cells.push((i, 0u32, kind, 64, 0.01));
            let kind2 = if i % 2 == 0 {
                EventKind::Recv
            } else {
                EventKind::Send
            };
            cells.push((i, 1u32, kind2, 64, 0.01));
        }
        let analysis = extract_phases(&lt_of(2, &cells), &SimilarityConfig::default());
        assert_eq!(analysis.nprocs, 2);
        let p = &analysis.phases[0];
        assert_eq!(p.events_per_occurrence(), 4); // 2 ticks × 2 processes
    }

    #[test]
    fn empty_trace_has_no_phases() {
        let lt = LogicalTrace {
            nprocs: 2,
            ticks: vec![],
        };
        let analysis = extract_phases(&lt, &SimilarityConfig::default());
        assert_eq!(analysis.total_phases(), 0);
        assert_eq!(analysis.aet, 0.0);
        assert_eq!(analysis.reconstructed_aet(), 0.0);
    }

    /// A trace with many *distinct* phases, so the known-phase list grows
    /// past `PAR_MIN_KNOWN` and the pool actually dispatches chunks.
    fn varied_trace() -> LogicalTrace {
        let mut cells = Vec::new();
        let mut t = 0;
        for rep in 0..12u64 {
            // Each block: a Send/Recv pair at a size unique to the block,
            // repeated twice so every block closes as its own phase.
            for _ in 0..2 {
                cells.push((
                    t,
                    0u32,
                    EventKind::Send,
                    16 << (rep % 6),
                    0.01 * (rep + 1) as f64,
                ));
                t += 1;
                cells.push((
                    t,
                    0u32,
                    EventKind::Recv,
                    16 << (rep % 6),
                    0.01 * (rep + 1) as f64,
                ));
                t += 1;
            }
        }
        lt_of(1, &cells)
    }

    fn strip_timing(mut a: PhaseAnalysis) -> PhaseAnalysis {
        a.analysis_seconds = 0.0;
        a
    }

    #[test]
    fn parallel_merge_is_byte_identical_to_sequential() {
        let lt = varied_trace();
        for kernel in [SimilarityKernel::Scalar, SimilarityKernel::Soa] {
            let sequential = {
                let cfg = SimilarityConfig {
                    parallelism: Some(1),
                    kernel,
                    ..SimilarityConfig::default()
                };
                strip_timing(extract_phases(&lt, &cfg))
            };
            assert!(
                sequential.total_phases() >= PAR_MIN_KNOWN,
                "trace must grow enough phases to engage the pool, got {}",
                sequential.total_phases()
            );
            for workers in [2usize, 3, 8] {
                let cfg = SimilarityConfig {
                    parallelism: Some(workers),
                    kernel,
                    ..SimilarityConfig::default()
                };
                let parallel = strip_timing(extract_phases(&lt, &cfg));
                assert_eq!(
                    sequential, parallel,
                    "kernel = {kernel:?}, workers = {workers}"
                );
                assert_eq!(
                    serde_json::to_string(&sequential)
                        .expect("serialize")
                        .into_bytes(),
                    serde_json::to_string(&parallel)
                        .expect("serialize")
                        .into_bytes(),
                    "kernel = {kernel:?}, workers = {workers}"
                );
            }
        }
    }

    #[test]
    fn soa_kernel_matches_scalar_oracle() {
        let lt = varied_trace();
        let run = |kernel: SimilarityKernel| {
            let cfg = SimilarityConfig {
                parallelism: Some(1),
                kernel,
                ..SimilarityConfig::default()
            };
            strip_timing(extract_phases(&lt, &cfg))
        };
        assert_eq!(run(SimilarityKernel::Scalar), run(SimilarityKernel::Soa));
    }

    #[test]
    fn effective_parallelism_resolves_and_clamps() {
        let mut cfg = SimilarityConfig::default();
        assert!(cfg.effective_parallelism() >= 1);
        cfg.parallelism = Some(0);
        assert_eq!(cfg.effective_parallelism(), 1);
        cfg.parallelism = Some(4);
        assert_eq!(cfg.effective_parallelism(), 4);
    }

    /// Regression: a zero parallelism setting must behave exactly like
    /// the forced-sequential path — never an unclamped worker count —
    /// on both kernels and at the extraction level, not just in
    /// `effective_parallelism`.
    #[test]
    fn zero_parallelism_extracts_identically_to_one() {
        let lt = varied_trace();
        for kernel in [SimilarityKernel::Scalar, SimilarityKernel::Soa] {
            let run = |parallelism: Option<usize>| {
                let cfg = SimilarityConfig {
                    parallelism,
                    kernel,
                    ..SimilarityConfig::default()
                };
                strip_timing(extract_phases(&lt, &cfg))
            };
            assert_eq!(run(Some(0)), run(Some(1)), "kernel = {kernel:?}");
        }
    }
}
