//! The phase table (paper §3.4, Fig 7).
//!
//! After analysis, the relevant phases and their weights are saved into a
//! table whose rows locate each phase inside a re-execution of the
//! application by per-process communication-event counts: "each row of the
//! table represents a phase, whose startpoint and endpoint are defined by
//! the number of sends where the phase occurs". The signature constructor
//! re-runs the instrumented application with this table loaded, detecting
//! the startpoints to place checkpoints.

use crate::extract::PhaseAnalysis;
use serde::{Deserialize, Serialize};

/// The start/end coordinates of one measured occurrence, as per-process
/// event counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasureWindow {
    /// Per-process event counts at the occurrence's startpoint.
    pub start_counts: Vec<u64>,
    /// Per-process event counts at the occurrence's endpoint.
    pub end_counts: Vec<u64>,
}

/// One row of the phase table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseRow {
    /// Phase identifier.
    pub phase_id: u32,
    /// Repetition count.
    pub weight: u64,
    /// Mean phase execution time on the base machine, seconds.
    pub phase_et_base: f64,
    /// Per-process event counts where the checkpoint is created — before
    /// the first measured occurrence, early enough that the restarted
    /// machine warms up (caches, TLBs) before measurement begins
    /// (paper §3.4 / Fig 8).
    pub ckpt_counts: Vec<u64>,
    /// Consecutive occurrences the signature measures; the PhaseET is the
    /// mean over these windows. The paper measures one occurrence on a
    /// DMTCP-restored process; our snapshots restore application state but
    /// not in-flight pipeline overlap, so averaging a run of occurrences
    /// recovers the steady-state mean (negligible extra SET at real
    /// weights of 10⁴–10⁵).
    pub windows: Vec<MeasureWindow>,
}

impl PhaseRow {
    /// Startpoint of the first measured occurrence (Fig 7's startpoint).
    ///
    /// `None` when the row has no measure windows. `from_analysis` never
    /// builds such a row, but a deserialized or hand-edited table can
    /// carry one (`pas2p-cli check` accepts those); callers must not
    /// assume the windows exist. `pas2p-check` reports empty rows as
    /// `SIG-ROW-001`.
    pub fn start_counts(&self) -> Option<&[u64]> {
        self.windows.first().map(|w| w.start_counts.as_slice())
    }

    /// Endpoint of the last measured occurrence; `None` when the row has
    /// no measure windows (see [`PhaseRow::start_counts`]).
    pub fn end_counts(&self) -> Option<&[u64]> {
        self.windows.last().map(|w| w.end_counts.as_slice())
    }
}

/// The phase table: everything the signature needs to locate, checkpoint
/// and measure the relevant phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseTable {
    /// Number of processes of the analyzed run.
    pub nprocs: u32,
    /// Application execution time on the base machine.
    pub aet_base: f64,
    /// Total phases found by the analysis (Table 8 "Total Phases").
    pub total_phases: usize,
    /// Relevance threshold used (paper: 0.01).
    pub relevance_threshold: f64,
    /// One row per relevant phase.
    pub rows: Vec<PhaseRow>,
}

impl PhaseTable {
    /// Build the table from an analysis.
    ///
    /// * `relevance_threshold` — fraction of AET a phase must contribute
    ///   (paper: 1 %).
    /// * `warmup` — minimum occurrences to skip after the first before
    ///   measurement begins (the checkpoint is placed one occurrence
    ///   before the first measured occurrence when the weight allows).
    /// * `measure_occurrences` — maximum consecutive occurrences to
    ///   measure and average.
    ///
    /// Uses automatic warm-up scaling (see [`PhaseTable::from_analysis_with`]).
    pub fn from_analysis(
        analysis: &PhaseAnalysis,
        relevance_threshold: f64,
        warmup: usize,
        measure_occurrences: usize,
    ) -> PhaseTable {
        Self::from_analysis_with(
            analysis,
            relevance_threshold,
            warmup,
            measure_occurrences,
            true,
        )
    }

    /// Like [`PhaseTable::from_analysis`], with explicit control over automatic
    /// warm-up scaling: when `auto_warmup` is true the measured occurrence
    /// is additionally skipped to `occurrences/8` (capped at 32) so
    /// pipelined applications reach steady state; when false, `warmup` is
    /// used verbatim (the `ablation_warmup` bench shows why the scaling
    /// matters).
    pub fn from_analysis_with(
        analysis: &PhaseAnalysis,
        relevance_threshold: f64,
        warmup: usize,
        measure_occurrences: usize,
        auto_warmup: bool,
    ) -> PhaseTable {
        let measure_occurrences = measure_occurrences.max(1);
        let mut rows = Vec::new();
        for phase in analysis.relevant(relevance_threshold) {
            let occ_count = phase.occurrences.len();
            debug_assert!(occ_count > 0);
            // "The checkpoint is made after the phases have occurred a
            // series of times" (paper §6): for high-weight phases, skip a
            // fraction of the occurrences (capped) so pipelined
            // applications reach steady state before measurement.
            let measured = if auto_warmup {
                warmup.max((occ_count / 8).min(32)).min(occ_count - 1)
            } else {
                warmup.min(occ_count - 1)
            };
            // Checkpoint placement: one occurrence ahead of the measured
            // one when occurrences are adjacent (warm-up at negligible
            // cost), but directly at the measured occurrence when they
            // are sparse — re-executing a long inter-occurrence gap would
            // dominate the SET (the paper's FT discussion, §6).
            let ckpt = if measured == 0 {
                0
            } else {
                let gap =
                    phase.occurrences[measured].t_start - phase.occurrences[measured - 1].t_start;
                let span = phase.occurrences[measured].duration();
                if gap <= 4.0 * span.max(1e-12) {
                    measured - 1
                } else {
                    measured
                }
            };
            // Measure a slice of the occurrences proportional to the
            // weight (1/12th, capped by the configuration): enough to
            // average out pipeline variation, negligible at real weights.
            // For sparse phases, extending the slice would re-execute the
            // long inter-occurrence gaps, so the total measured span is
            // additionally bounded by a small multiple of the phase's own
            // duration.
            let k_max = measure_occurrences
                .min((occ_count / 12).max(1))
                .min(occ_count - measured);
            let span_bound = 24.0 * phase.mean_duration().max(1e-9);
            let first_start = phase.occurrences[measured].t_start;
            let mut count = 1;
            while count < k_max {
                let span = phase.occurrences[measured + count].t_end - first_start;
                if span > span_bound {
                    break;
                }
                count += 1;
            }
            let windows = phase.occurrences[measured..measured + count]
                .iter()
                .map(|o| MeasureWindow {
                    start_counts: o.start_counts.clone(),
                    end_counts: o.end_counts.clone(),
                })
                .collect();
            rows.push(PhaseRow {
                phase_id: phase.id,
                weight: phase.weight,
                phase_et_base: phase.mean_duration(),
                ckpt_counts: phase.occurrences[ckpt].start_counts.clone(),
                windows,
            });
        }
        PhaseTable {
            nprocs: analysis.nprocs,
            aet_base: analysis.aet,
            total_phases: analysis.total_phases(),
            relevance_threshold,
            rows,
        }
    }

    /// Number of relevant phases.
    pub fn relevant_phases(&self) -> usize {
        self.rows.len()
    }

    /// Serialize to the JSON interchange form (our analog of the
    /// `PHASE_TABLE` file of Fig 7).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("phase table serializes")
    }

    /// Parse the JSON interchange form.
    pub fn from_json(s: &str) -> Result<PhaseTable, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Predicted AET from table contents alone: Σ weight × base PhaseET.
    /// (The real prediction replaces base PhaseETs with target-machine
    /// measurements; this is the self-consistency value.)
    pub fn base_prediction(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.weight as f64 * r.phase_et_base)
            .sum()
    }
}

impl std::fmt::Display for PhaseTable {
    /// Renders the Fig 7 layout: per-process startpoint and endpoint
    /// counts, then phase id and weight.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "# PHASE_TABLE ({} processes)", self.nprocs)?;
        writeln!(f, "# startpoint | endpoint | id | weight")?;
        let render = |counts: Option<&[u64]>| match counts {
            Some(c) => c
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(" "),
            None => "-".to_string(),
        };
        for row in &self.rows {
            writeln!(
                f,
                "{} | {} | {} | {}",
                render(row.start_counts()),
                render(row.end_counts()),
                row.phase_id,
                row.weight
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract_phases, Occurrence, Phase};
    use crate::sig::SimilarityConfig;
    use pas2p_model::{LogicalEvent, LogicalTrace, Tick};
    use pas2p_trace::EventKind;

    fn iterative_analysis(iters: usize) -> PhaseAnalysis {
        let mut ticks = Vec::new();
        let mut clock = 0.0;
        for (number, i) in (0..iters * 2).enumerate() {
            clock += 0.01;
            ticks.push(Tick {
                events: vec![LogicalEvent {
                    process: 0,
                    number: number as u64,
                    kind: if i % 2 == 0 {
                        EventKind::Send
                    } else {
                        EventKind::Recv
                    },
                    peer: Some(0),
                    size: 64,
                    involved: 1,
                    msg_id: 0,
                    comm_id: 0,
                    compute_before: 0.01,
                    duration: 0.0,
                    t_post: clock,
                    t_complete: clock,
                }],
            });
        }
        extract_phases(
            &LogicalTrace { nprocs: 1, ticks },
            &SimilarityConfig::default(),
        )
    }

    use crate::extract::PhaseAnalysis;

    #[test]
    fn table_rows_cover_relevant_phases() {
        let analysis = iterative_analysis(10);
        let table = PhaseTable::from_analysis(&analysis, 0.01, 1, 1);
        assert_eq!(table.relevant_phases(), 1);
        assert_eq!(table.total_phases, 1);
        let row = &table.rows[0];
        assert_eq!(row.weight, 10);
        // Measured occurrence is the second (warm-up 1); checkpoint is at
        // the first occurrence's start.
        assert_eq!(row.ckpt_counts, vec![0]);
        assert_eq!(row.start_counts(), Some(&[2u64][..]));
        assert_eq!(row.end_counts(), Some(&[4u64][..]));
    }

    #[test]
    fn warmup_clamps_to_available_occurrences() {
        let analysis = iterative_analysis(1);
        let table = PhaseTable::from_analysis(&analysis, 0.01, 5, 1);
        let row = &table.rows[0];
        assert_eq!(row.start_counts(), Some(&[0u64][..]));
        assert_eq!(row.ckpt_counts, vec![0]);
    }

    #[test]
    fn json_roundtrip() {
        let analysis = iterative_analysis(4);
        let table = PhaseTable::from_analysis(&analysis, 0.01, 1, 1);
        let back = PhaseTable::from_json(&table.to_json()).unwrap();
        assert_eq!(back, table);
    }

    #[test]
    fn display_matches_fig7_shape() {
        let analysis = iterative_analysis(4);
        let table = PhaseTable::from_analysis(&analysis, 0.01, 1, 1);
        let s = table.to_string();
        assert!(s.contains("PHASE_TABLE"));
        assert!(s.lines().count() >= 3);
        assert!(s.contains(" | "));
    }

    #[test]
    fn base_prediction_approximates_aet() {
        let analysis = iterative_analysis(50);
        let table = PhaseTable::from_analysis(&analysis, 0.01, 1, 1);
        let pred = table.base_prediction();
        assert!(
            (pred - analysis.aet).abs() / analysis.aet < 0.05,
            "pred {} vs aet {}",
            pred,
            analysis.aet
        );
    }

    #[test]
    fn empty_windows_row_is_survivable() {
        // A tampered/deserialized table can carry a row with no measure
        // windows; the accessors and Display must not panic on it.
        let row = PhaseRow {
            phase_id: 7,
            weight: 3,
            phase_et_base: 0.5,
            ckpt_counts: vec![0, 0],
            windows: vec![],
        };
        assert_eq!(row.start_counts(), None);
        assert_eq!(row.end_counts(), None);
        let table = PhaseTable {
            nprocs: 2,
            aet_base: 1.0,
            total_phases: 1,
            relevance_threshold: 0.01,
            rows: vec![row],
        };
        let rendered = table.to_string();
        assert!(rendered.contains("- | - | 7 | 3"), "{rendered}");
    }

    /// One phase whose occurrence `i` spans `times[i]` and carries the
    /// per-process counts `[2i] → [2i+1]`, wrapped into an analysis with
    /// the given AET — hand-built so each placement rule can be pinned
    /// with exact occurrence timing.
    fn analysis_of(times: &[(f64, f64)], aet: f64) -> PhaseAnalysis {
        let occurrences = times
            .iter()
            .enumerate()
            .map(|(i, &(t0, t1))| Occurrence {
                start_tick: 2 * i,
                end_tick: 2 * i + 1,
                t_start: t0,
                t_end: t1,
                start_counts: vec![2 * i as u64],
                end_counts: vec![2 * i as u64 + 1],
            })
            .collect::<Vec<_>>();
        PhaseAnalysis {
            nprocs: 1,
            phases: vec![Phase {
                id: 0,
                pattern: vec![],
                weight: occurrences.len() as u64,
                occurrences,
            }],
            aet,
            analysis_seconds: 0.0,
            negative_spans: 0,
        }
    }

    #[test]
    fn auto_warmup_scales_with_occurrence_count() {
        // 80 adjacent occurrences: auto warm-up skips occ_count/8 = 10,
        // the checkpoint sits one occurrence ahead of the measured one.
        let times: Vec<(f64, f64)> = (0..80).map(|i| (i as f64, i as f64 + 0.9)).collect();
        let analysis = analysis_of(&times, 80.0);
        let table = PhaseTable::from_analysis(&analysis, 0.01, 1, 4);
        let row = &table.rows[0];
        assert_eq!(row.start_counts(), Some(&[20u64][..]), "measured occ 10");
        assert_eq!(row.ckpt_counts, vec![18], "checkpoint at occ 9");
        assert_eq!(row.windows.len(), 4, "measure slice honors the config cap");
        // Verbatim warm-up: the same analysis without auto scaling
        // measures the second occurrence and checkpoints at the first.
        let verbatim = PhaseTable::from_analysis_with(&analysis, 0.01, 1, 4, false);
        let row = &verbatim.rows[0];
        assert_eq!(row.start_counts(), Some(&[2u64][..]));
        assert_eq!(row.ckpt_counts, vec![0]);
    }

    #[test]
    fn checkpoint_moves_onto_sparse_occurrences() {
        // Two occurrences 100 s apart (spans of 1 s): re-executing the
        // gap from a checkpoint one occurrence earlier would dominate
        // the SET, so the checkpoint lands on the measured occurrence.
        let analysis = analysis_of(&[(0.0, 1.0), (100.0, 101.0)], 102.0);
        let table = PhaseTable::from_analysis(&analysis, 0.01, 1, 1);
        let row = &table.rows[0];
        assert_eq!(row.start_counts(), Some(&[2u64][..]), "measured occ 1");
        assert_eq!(
            row.ckpt_counts,
            vec![2],
            "sparse gap: checkpoint at the measured occurrence itself"
        );
    }

    #[test]
    fn measure_slice_stops_at_the_span_bound() {
        // 96 occurrences, adjacent up to index 14, then spaced 1000 s
        // apart: the slice may take up to min(8, 96/12) = 8 windows but
        // must stop once the measured span exceeds 24 × the mean
        // duration — here after 3 windows (indices 12, 13, 14).
        let times: Vec<(f64, f64)> = (0..96)
            .map(|i| {
                let t0 = if i < 15 { i as f64 } else { 1000.0 * i as f64 };
                (t0, t0 + 0.5)
            })
            .collect();
        let analysis = analysis_of(&times, 1000.0);
        let table = PhaseTable::from_analysis(&analysis, 0.01, 1, 8);
        let row = &table.rows[0];
        assert_eq!(row.start_counts(), Some(&[24u64][..]), "measured occ 12");
        assert_eq!(row.windows.len(), 3, "span bound cuts the slice short");
        assert_eq!(
            row.end_counts(),
            Some(&[29u64][..]),
            "last window is occ 14"
        );
    }

    #[test]
    fn weights_account_for_every_deduplicated_occurrence() {
        // The merge path credits each occurrence to exactly one phase:
        // weights equal occurrence counts, occurrences are in strictly
        // increasing trace order, and no window is double-counted.
        let analysis = iterative_analysis(10);
        assert_eq!(analysis.total_phases(), 1);
        for phase in &analysis.phases {
            assert_eq!(phase.weight as usize, phase.occurrences.len());
            for pair in phase.occurrences.windows(2) {
                assert!(
                    pair[0].t_end <= pair[1].t_start,
                    "occurrences must not overlap: {pair:?}"
                );
                assert!(
                    pair[0].start_counts < pair[1].start_counts,
                    "startpoint counts must advance monotonically"
                );
            }
        }
        // The table row carries the full deduplicated weight, and the
        // weighted base prediction reconstructs the analysis AET.
        let table = PhaseTable::from_analysis(&analysis, 0.01, 1, 1);
        assert_eq!(table.rows[0].weight, 10);
        let reconstructed = analysis.reconstructed_aet();
        assert!(
            (table.base_prediction() - reconstructed).abs() <= 1e-9 * reconstructed.abs(),
            "Σ weight × PhaseET must equal the analysis reconstruction"
        );
    }

    #[test]
    fn irrelevant_phases_are_dropped() {
        // Hand-build an analysis with one dominant and one negligible phase.
        let occ = |t0: f64, t1: f64| Occurrence {
            start_tick: 0,
            end_tick: 1,
            t_start: t0,
            t_end: t1,
            start_counts: vec![0],
            end_counts: vec![1],
        };
        let analysis = PhaseAnalysis {
            nprocs: 1,
            phases: vec![
                Phase {
                    id: 0,
                    pattern: vec![],
                    weight: 100,
                    occurrences: vec![occ(0.0, 1.0)],
                },
                Phase {
                    id: 1,
                    pattern: vec![],
                    weight: 1,
                    occurrences: vec![occ(0.0, 1e-4)],
                },
            ],
            aet: 100.0,
            analysis_seconds: 0.0,
            negative_spans: 0,
        };
        let table = PhaseTable::from_analysis(&analysis, 0.01, 1, 1);
        assert_eq!(table.relevant_phases(), 1);
        assert_eq!(table.rows[0].phase_id, 0);
    }
}
