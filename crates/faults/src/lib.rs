//! Deterministic fault injection for PAS2P traces.
//!
//! The paper's data-collection stage (§3.1) assumes every rank delivers a
//! complete, well-formed tracefile. Real instrumented runs do not: nodes
//! die mid-flush (truncated files), disks and interconnects corrupt
//! records, whole ranks never report, buggy tracers emit an event twice,
//! and unsynchronized clocks skew one rank against the rest. This crate
//! reproduces those failure modes *deterministically*: a [`FaultPlan`] is
//! a seed plus an ordered list of [`FaultKind`]s, and applying the same
//! plan to the same trace always yields the same bytes — mirroring how
//! the batch driver made parallelism deterministic. That property is what
//! lets a fault matrix run in CI and produce byte-identical reports for
//! any worker count.
//!
//! Faults split into two groups. *Stream faults* ([`FaultKind::DropRank`],
//! [`FaultKind::DuplicateEvents`], [`FaultKind::SkewClock`]) act on the
//! [`Trace`] before encoding — they model a producer-side failure.
//! *Byte faults* ([`FaultKind::Truncate`], [`FaultKind::CorruptBits`])
//! act on the encoded buffer — they model a transport/storage failure.
//! [`FaultPlan::inject`] applies both groups in plan order around one
//! [`pas2p_trace::format::encode`] call.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pas2p_trace::{format, Trace};
use serde::{Deserialize, Serialize};

pub mod chaos;
pub mod store_io;

pub use chaos::{chaos_plan, ChaosBehavior, ChaosPlan};
pub use store_io::{FaultStoreIo, StoreFaultKind, StoreFaultStats, StoreOp};

/// A tiny deterministic PRNG (splitmix64). The crate deliberately avoids
/// a `rand` dependency: fault injection must be reproducible from the
/// plan alone, and splitmix64's whole state is its seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }
}

/// One injected failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Keep only the first `keep_per_mille`/1000 of the encoded buffer —
    /// a tracer killed mid-flush. `keep_per_mille` ≥ 1000 is a no-op.
    Truncate {
        /// Surviving prefix length in per-mille of the buffer.
        keep_per_mille: u32,
    },
    /// Flip `flips` uniformly chosen bits in the event-record region of
    /// the buffer (the header is left alone; header loss is modeled by
    /// [`FaultKind::Truncate`] instead).
    CorruptBits {
        /// Number of single-bit flips to apply.
        flips: u32,
    },
    /// Remove rank `rank`'s whole section — the rank never reported.
    DropRank {
        /// Rank whose trace section is dropped.
        rank: u32,
    },
    /// Re-emit `copies` randomly chosen events of `rank` immediately
    /// after their original — a double-logging tracer bug. The copies
    /// keep their original event numbers, so per-rank numbering becomes
    /// non-monotone (exactly what a real duplicate looks like).
    DuplicateEvents {
        /// Rank whose stream gains duplicates.
        rank: u32,
        /// How many events are duplicated.
        copies: u32,
    },
    /// Add `seconds` to every timestamp of `rank` — an unsynchronized
    /// node clock.
    SkewClock {
        /// Rank whose clock drifts.
        rank: u32,
        /// Drift in virtual seconds (may be negative).
        seconds: f64,
    },
}

impl FaultKind {
    /// Short stable label for reports and job names.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Truncate { .. } => "truncate",
            FaultKind::CorruptBits { .. } => "corrupt",
            FaultKind::DropRank { .. } => "drop-rank",
            FaultKind::DuplicateEvents { .. } => "duplicate",
            FaultKind::SkewClock { .. } => "skew-clock",
        }
    }
}

/// What a plan actually did to one trace — every count is deterministic
/// in (plan, trace).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultLog {
    /// Bytes cut off the end of the buffer.
    pub bytes_truncated: u64,
    /// Single-bit flips applied.
    pub bits_flipped: u64,
    /// Rank sections removed.
    pub ranks_dropped: u64,
    /// Events re-emitted.
    pub events_duplicated: u64,
    /// Ranks whose clocks were skewed.
    pub clocks_skewed: u64,
}

impl FaultLog {
    /// One deterministic summary line.
    pub fn render(&self) -> String {
        format!(
            "truncated={}B flipped={} dropped={} duplicated={} skewed={}",
            self.bytes_truncated,
            self.bits_flipped,
            self.ranks_dropped,
            self.events_duplicated,
            self.clocks_skewed
        )
    }
}

/// A seeded, ordered list of faults. Applying the same plan to the same
/// trace is reproducible byte-for-byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// PRNG seed all random choices derive from.
    pub seed: u64,
    /// Faults, applied in order.
    pub faults: Vec<FaultKind>,
}

impl FaultPlan {
    /// An empty plan with `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Append a fault (builder style).
    pub fn with(mut self, fault: FaultKind) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// Deterministic one-line description, e.g. `seed=42 truncate corrupt`.
    pub fn describe(&self) -> String {
        let mut s = format!("seed={}", self.seed);
        for f in &self.faults {
            s.push(' ');
            s.push_str(f.label());
        }
        s
    }

    /// Apply the stream faults to a clone of `trace`.
    pub fn apply_trace(&self, trace: &Trace, log: &mut FaultLog) -> Trace {
        let mut rng = SplitMix64::new(self.seed);
        let mut out = trace.clone();
        for fault in &self.faults {
            match *fault {
                FaultKind::DropRank { rank } => {
                    let before = out.procs.len();
                    out.procs.retain(|p| p.process != rank);
                    log.ranks_dropped += (before - out.procs.len()) as u64;
                }
                FaultKind::DuplicateEvents { rank, copies } => {
                    if let Some(p) = out.procs.iter_mut().find(|p| p.process == rank) {
                        for _ in 0..copies {
                            if p.events.is_empty() {
                                break;
                            }
                            let i = rng.below(p.events.len() as u64) as usize;
                            let dup = p.events[i].clone();
                            p.events.insert(i + 1, dup);
                            log.events_duplicated += 1;
                        }
                    }
                }
                FaultKind::SkewClock { rank, seconds } => {
                    if let Some(p) = out.procs.iter_mut().find(|p| p.process == rank) {
                        for e in &mut p.events {
                            e.t_post += seconds;
                            e.t_complete += seconds;
                        }
                        p.end_time += seconds;
                        log.clocks_skewed += 1;
                    }
                }
                // Byte faults are applied by `apply_bytes`.
                FaultKind::Truncate { .. } | FaultKind::CorruptBits { .. } => {}
            }
        }
        out
    }

    /// Apply the byte faults to `buf`. `record_region_start` bounds bit
    /// flips away from the header (pass 0 to allow flips anywhere).
    pub fn apply_bytes(&self, buf: &mut Vec<u8>, record_region_start: usize, log: &mut FaultLog) {
        // An independent stream from the same seed: byte faults must not
        // depend on how many random draws the stream faults consumed.
        let mut rng = SplitMix64::new(self.seed ^ 0xb5ad4eceda1ce2a9);
        for fault in &self.faults {
            match *fault {
                FaultKind::Truncate { keep_per_mille } => {
                    if keep_per_mille < 1000 {
                        let keep =
                            (buf.len() as u64 * keep_per_mille as u64 / 1000) as usize;
                        log.bytes_truncated += (buf.len() - keep) as u64;
                        buf.truncate(keep);
                    }
                }
                FaultKind::CorruptBits { flips } => {
                    let lo = record_region_start.min(buf.len());
                    let span = buf.len() - lo;
                    if span == 0 {
                        continue;
                    }
                    for _ in 0..flips {
                        let byte = lo + rng.below(span as u64) as usize;
                        let bit = rng.below(8) as u8;
                        buf[byte] ^= 1 << bit;
                        log.bits_flipped += 1;
                    }
                }
                FaultKind::DropRank { .. }
                | FaultKind::DuplicateEvents { .. }
                | FaultKind::SkewClock { .. } => {}
            }
        }
    }

    /// The whole injection: stream faults on the trace, encode, byte
    /// faults on the buffer. Returns the faulted buffer and what was done.
    pub fn inject(&self, trace: &Trace) -> (Vec<u8>, FaultLog) {
        let mut log = FaultLog::default();
        let faulted = self.apply_trace(trace, &mut log);
        let mut buf = format::encode(&faulted);
        // The fixed-size header plus machine name; flips land in the
        // per-process sections so the file stays recognizably a trace.
        let header = 8 + 4 + 4 + 4 + faulted.machine.len();
        self.apply_bytes(&mut buf, header, &mut log);
        if pas2p_obs::enabled() {
            pas2p_obs::counter("fault.plans_applied").add(1);
            pas2p_obs::counter("fault.truncated_bytes").add(log.bytes_truncated);
            pas2p_obs::counter("fault.bits_flipped").add(log.bits_flipped);
            pas2p_obs::counter("fault.ranks_dropped").add(log.ranks_dropped);
            pas2p_obs::counter("fault.events_duplicated").add(log.events_duplicated);
            pas2p_obs::counter("fault.clocks_skewed").add(log.clocks_skewed);
        }
        (buf, log)
    }
}

/// The canonical CI fault matrix: one plan per failure family, all
/// derived from `seed`. Matches the acceptance scenario (truncation,
/// corruption, dropped rank, duplicate events).
pub fn fault_matrix(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "truncate",
            FaultPlan::new(seed).with(FaultKind::Truncate {
                keep_per_mille: 850,
            }),
        ),
        (
            "corrupt",
            FaultPlan::new(seed.wrapping_add(1)).with(FaultKind::CorruptBits { flips: 128 }),
        ),
        (
            "drop-rank",
            FaultPlan::new(seed.wrapping_add(2)).with(FaultKind::DropRank { rank: 1 }),
        ),
        (
            "duplicate",
            FaultPlan::new(seed.wrapping_add(3)).with(FaultKind::DuplicateEvents {
                rank: 0,
                copies: 3,
            }),
        ),
    ]
}

/// Parse a fault-plan spec: a line-oriented text format so plans can be
/// shipped to the CLI without a JSON dependency.
///
/// ```text
/// # one plan per `plan` line; faults attach to the latest plan
/// plan seed=42
/// truncate keep=850
/// corrupt flips=128
/// plan seed=43
/// drop rank=1
/// duplicate rank=0 copies=3
/// skew rank=2 seconds=0.5
/// ```
pub fn parse_spec(text: &str) -> Result<Vec<FaultPlan>, String> {
    fn field<T: std::str::FromStr>(
        parts: &[&str],
        key: &str,
        line_no: usize,
    ) -> Result<T, String> {
        for p in parts {
            if let Some(v) = p.strip_prefix(key).and_then(|r| r.strip_prefix('=')) {
                return v
                    .parse::<T>()
                    .map_err(|_| format!("line {}: bad value for '{}'", line_no, key));
            }
        }
        Err(format!("line {}: missing '{}='", line_no, key))
    }

    let mut plans: Vec<FaultPlan> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let (word, rest) = (parts[0], &parts[1..]);
        if word == "plan" {
            plans.push(FaultPlan::new(field::<u64>(rest, "seed", line_no)?));
            continue;
        }
        let plan = plans
            .last_mut()
            .ok_or_else(|| format!("line {}: fault before any 'plan seed=N' line", line_no))?;
        let fault = match word {
            "truncate" => FaultKind::Truncate {
                keep_per_mille: field(rest, "keep", line_no)?,
            },
            "corrupt" => FaultKind::CorruptBits {
                flips: field(rest, "flips", line_no)?,
            },
            "drop" => FaultKind::DropRank {
                rank: field(rest, "rank", line_no)?,
            },
            "duplicate" => FaultKind::DuplicateEvents {
                rank: field(rest, "rank", line_no)?,
                copies: field(rest, "copies", line_no)?,
            },
            "skew" => FaultKind::SkewClock {
                rank: field(rest, "rank", line_no)?,
                seconds: field(rest, "seconds", line_no)?,
            },
            other => return Err(format!("line {}: unknown fault '{}'", line_no, other)),
        };
        plan.faults.push(fault);
    }
    Ok(plans)
}

/// Render plans back into the [`parse_spec`] format.
pub fn render_spec(plans: &[FaultPlan]) -> String {
    let mut out = String::new();
    for p in plans {
        out.push_str(&format!("plan seed={}\n", p.seed));
        for f in &p.faults {
            let line = match *f {
                FaultKind::Truncate { keep_per_mille } => {
                    format!("truncate keep={}", keep_per_mille)
                }
                FaultKind::CorruptBits { flips } => format!("corrupt flips={}", flips),
                FaultKind::DropRank { rank } => format!("drop rank={}", rank),
                FaultKind::DuplicateEvents { rank, copies } => {
                    format!("duplicate rank={} copies={}", rank, copies)
                }
                FaultKind::SkewClock { rank, seconds } => {
                    format!("skew rank={} seconds={}", rank, seconds)
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_trace::{EventKind, ProcessTrace, TraceEvent};

    fn trace(nprocs: u32, events_per_rank: usize) -> Trace {
        let procs = (0..nprocs)
            .map(|r| ProcessTrace {
                process: r,
                events: (0..events_per_rank)
                    .map(|i| TraceEvent {
                        number: i as u64,
                        process: r,
                        t_post: i as f64,
                        t_complete: i as f64 + 0.5,
                        kind: if i % 2 == 0 {
                            EventKind::Send
                        } else {
                            EventKind::Recv
                        },
                        peer: Some((r + 1) % nprocs),
                        tag: 1,
                        size: 64,
                        involved: 1,
                        msg_id: (r as u64) << 32 | i as u64,
                        comm_id: 0,
                        wildcard: false,
                    })
                    .collect(),
                end_time: events_per_rank as f64,
            })
            .collect();
        Trace {
            nprocs,
            machine: "cluster-A".into(),
            procs,
        }
    }

    #[test]
    fn splitmix_is_deterministic_and_varied() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        assert!(SplitMix64::new(8).next_u64() != xs[0]);
    }

    #[test]
    fn same_plan_same_trace_same_bytes() {
        let t = trace(4, 20);
        let plan = FaultPlan::new(42)
            .with(FaultKind::CorruptBits { flips: 32 })
            .with(FaultKind::Truncate { keep_per_mille: 900 });
        let (a, la) = plan.inject(&t);
        let (b, lb) = plan.inject(&t);
        assert_eq!(a, b, "injection must be byte-for-byte reproducible");
        assert_eq!(la, lb);
        let (c, _) = FaultPlan { seed: 43, ..plan.clone() }.inject(&t);
        assert_ne!(a, c, "a different seed must flip different bits");
    }

    #[test]
    fn truncate_cuts_the_tail() {
        let t = trace(2, 10);
        let clean = format::encode(&t);
        let plan = FaultPlan::new(1).with(FaultKind::Truncate { keep_per_mille: 500 });
        let (buf, log) = plan.inject(&t);
        assert_eq!(buf.len(), clean.len() / 2);
        assert_eq!(log.bytes_truncated as usize, clean.len() - buf.len());
        assert_eq!(buf[..], clean[..buf.len()]);
    }

    #[test]
    fn corrupt_leaves_header_intact() {
        let t = trace(2, 10);
        let clean = format::encode(&t);
        let plan = FaultPlan::new(9).with(FaultKind::CorruptBits { flips: 64 });
        let (buf, log) = plan.inject(&t);
        assert_eq!(log.bits_flipped, 64);
        let header = 8 + 4 + 4 + 4 + t.machine.len();
        assert_eq!(buf[..header], clean[..header], "header must stay clean");
        assert_ne!(buf[header..], clean[header..]);
    }

    #[test]
    fn drop_rank_removes_its_section() {
        let t = trace(4, 5);
        let mut log = FaultLog::default();
        let out = FaultPlan::new(0)
            .with(FaultKind::DropRank { rank: 2 })
            .apply_trace(&t, &mut log);
        assert_eq!(out.procs.len(), 3);
        assert!(out.procs.iter().all(|p| p.process != 2));
        assert_eq!(out.nprocs, 4, "the header still claims every rank");
        assert_eq!(log.ranks_dropped, 1);
    }

    #[test]
    fn duplicates_keep_original_numbers() {
        let t = trace(2, 8);
        let mut log = FaultLog::default();
        let out = FaultPlan::new(5)
            .with(FaultKind::DuplicateEvents { rank: 0, copies: 2 })
            .apply_trace(&t, &mut log);
        let p = &out.procs[0];
        assert_eq!(p.events.len(), 10);
        assert_eq!(log.events_duplicated, 2);
        // At least one adjacent pair shares an event number.
        assert!(p
            .events
            .windows(2)
            .any(|w| w[0].number == w[1].number));
    }

    #[test]
    fn skew_shifts_all_times_of_one_rank() {
        let t = trace(2, 4);
        let mut log = FaultLog::default();
        let out = FaultPlan::new(0)
            .with(FaultKind::SkewClock { rank: 1, seconds: 2.5 })
            .apply_trace(&t, &mut log);
        assert_eq!(log.clocks_skewed, 1);
        for (a, b) in t.procs[1].events.iter().zip(&out.procs[1].events) {
            assert!((b.t_post - a.t_post - 2.5).abs() < 1e-12);
            assert!((b.t_complete - a.t_complete - 2.5).abs() < 1e-12);
        }
        assert_eq!(out.procs[0], t.procs[0]);
    }

    #[test]
    fn matrix_covers_the_acceptance_families() {
        let m = fault_matrix(42);
        let labels: Vec<&str> = m.iter().map(|(n, _)| *n).collect();
        assert_eq!(labels, ["truncate", "corrupt", "drop-rank", "duplicate"]);
        // Distinct seeds so the corrupt plan cannot shadow the truncate.
        let mut seeds: Vec<u64> = m.iter().map(|(_, p)| p.seed).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn spec_roundtrips() {
        let plans = vec![
            FaultPlan::new(42)
                .with(FaultKind::Truncate { keep_per_mille: 850 })
                .with(FaultKind::CorruptBits { flips: 128 }),
            FaultPlan::new(43)
                .with(FaultKind::DropRank { rank: 1 })
                .with(FaultKind::DuplicateEvents { rank: 0, copies: 3 })
                .with(FaultKind::SkewClock { rank: 2, seconds: 0.5 }),
        ];
        let text = render_spec(&plans);
        assert_eq!(parse_spec(&text).unwrap(), plans);
    }

    #[test]
    fn spec_errors_name_the_line() {
        assert!(parse_spec("truncate keep=5").unwrap_err().contains("line 1"));
        assert!(parse_spec("plan seed=1\nwobble x=1")
            .unwrap_err()
            .contains("unknown fault 'wobble'"));
        assert!(parse_spec("plan seed=1\ntruncate")
            .unwrap_err()
            .contains("missing 'keep='"));
        assert!(parse_spec("# only comments\n\n").unwrap().is_empty());
    }
}
