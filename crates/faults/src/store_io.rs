//! Fault injection for the signature repository's filesystem seam.
//!
//! PR 5 taught the harness to corrupt *trace bytes*; this module points
//! the same adversarial-timing mindset at the store itself. A
//! [`FaultStoreIo`] wraps the production [`RealIo`] and makes the nth
//! operation of a chosen kind misbehave — a write that tears partway
//! through, a read that comes up short, a rename or fsync that fails, or
//! an operation that blocks until a gate file appears. Everything is
//! counted, so a soak test can assert *exactly* which faults fired, and
//! everything is deterministic in the plan: no clocks, no randomness,
//! just 1-indexed operation counters.
//!
//! The store's durability contract under these faults is the acceptance
//! criterion of the chaos harness: a failed write must surface a
//! classified `StoreError` (never a silent tear), and the recovery pass
//! at the next open must evict anything the tear left behind.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pas2p_store::{RealIo, StoreIo};
use serde::{Deserialize, Serialize};

/// Which I/O operation family a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StoreOp {
    /// `StoreIo::write` — object and index publishes.
    Write,
    /// `StoreIo::read_to_string` — object and index loads.
    Read,
    /// `StoreIo::rename` — the atomic publish step.
    Rename,
    /// `StoreIo::sync_file` / `sync_dir` — the durability barrier.
    Sync,
}

impl StoreOp {
    /// Short stable label for logs and reports.
    pub fn label(&self) -> &'static str {
        match self {
            StoreOp::Write => "write",
            StoreOp::Read => "read",
            StoreOp::Rename => "rename",
            StoreOp::Sync => "sync",
        }
    }
}

/// One injected store-I/O failure mode. Counters are 1-indexed per
/// operation family: `on_op: 3` fires on the third write (read, …)
/// the store performs after the injector is installed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StoreFaultKind {
    /// The nth write persists only the first `keep_per_mille`/1000 of
    /// its bytes and then fails — a process killed mid-`write(2)`.
    TornWrite {
        /// 1-indexed write this fires on.
        on_op: u64,
        /// Surviving prefix in per-mille of the payload.
        keep_per_mille: u32,
    },
    /// The nth read *succeeds* but returns only a prefix — a torn page
    /// or a filesystem that lied. The caller must catch this by
    /// checksum, not by `Err`.
    ShortRead {
        /// 1-indexed read this fires on.
        on_op: u64,
        /// Surviving prefix in per-mille of the content.
        keep_per_mille: u32,
    },
    /// The nth rename fails — the publish step itself dies.
    RenameFail {
        /// 1-indexed rename this fires on.
        on_op: u64,
    },
    /// The nth fsync (file or directory) fails — the durability barrier
    /// reports an error, as real disks occasionally do.
    FsyncFail {
        /// 1-indexed sync this fires on.
        on_op: u64,
    },
    /// Every operation of `op` from the `on_op`th onward blocks until
    /// the `gate` file exists (or the cancel check trips). This is the
    /// deterministic stand-in for "a slow disk": tests use it to hold a
    /// worker mid-request and observe queue depth, shedding and
    /// deadlines without racing wall-clock sleeps.
    BlockOnGate {
        /// Operation family to stall.
        op: StoreOp,
        /// 1-indexed operation the stall starts at.
        on_op: u64,
        /// Path whose existence releases the stall.
        gate: String,
    },
}

impl StoreFaultKind {
    /// Short stable label for logs and reports.
    pub fn label(&self) -> &'static str {
        match self {
            StoreFaultKind::TornWrite { .. } => "torn-write",
            StoreFaultKind::ShortRead { .. } => "short-read",
            StoreFaultKind::RenameFail { .. } => "rename-fail",
            StoreFaultKind::FsyncFail { .. } => "fsync-fail",
            StoreFaultKind::BlockOnGate { .. } => "block-on-gate",
        }
    }
}

/// Shared operation/fault counters. The store owns its `StoreIo` as a
/// `Box`, so tests keep an `Arc` of this to observe what fired.
#[derive(Debug, Default)]
pub struct StoreFaultStats {
    /// Total writes attempted.
    pub writes: AtomicU64,
    /// Total reads attempted.
    pub reads: AtomicU64,
    /// Total renames attempted.
    pub renames: AtomicU64,
    /// Total syncs (file + dir) attempted.
    pub syncs: AtomicU64,
    /// Writes that tore.
    pub torn_writes: AtomicU64,
    /// Reads that returned short content.
    pub short_reads: AtomicU64,
    /// Renames that failed.
    pub failed_renames: AtomicU64,
    /// Syncs that failed.
    pub failed_syncs: AtomicU64,
    /// Operations that blocked on a gate (and were later released or
    /// cancelled).
    pub gated_ops: AtomicU64,
}

impl StoreFaultStats {
    /// Faults fired so far, all kinds.
    pub fn faults_fired(&self) -> u64 {
        self.torn_writes.load(Ordering::SeqCst)
            + self.short_reads.load(Ordering::SeqCst)
            + self.failed_renames.load(Ordering::SeqCst)
            + self.failed_syncs.load(Ordering::SeqCst)
    }

    /// One deterministic summary line.
    pub fn render(&self) -> String {
        format!(
            "ops(w/r/mv/sync)={}/{}/{}/{} torn={} short={} mv-fail={} sync-fail={} gated={}",
            self.writes.load(Ordering::SeqCst),
            self.reads.load(Ordering::SeqCst),
            self.renames.load(Ordering::SeqCst),
            self.syncs.load(Ordering::SeqCst),
            self.torn_writes.load(Ordering::SeqCst),
            self.short_reads.load(Ordering::SeqCst),
            self.failed_renames.load(Ordering::SeqCst),
            self.failed_syncs.load(Ordering::SeqCst),
            self.gated_ops.load(Ordering::SeqCst),
        )
    }
}

/// Callback polled while an operation is gate-blocked; returning `true`
/// aborts the wait with an `Interrupted` error so a deadline-cancelled
/// request fails classified instead of hanging a worker forever.
pub type CancelCheck = Box<dyn Fn() -> bool + Send + Sync>;

/// A [`StoreIo`] that injects the faults of a plan into a wrapped
/// [`RealIo`], deterministically by operation index.
pub struct FaultStoreIo {
    inner: RealIo,
    faults: Vec<StoreFaultKind>,
    stats: Arc<StoreFaultStats>,
    cancel_check: Option<CancelCheck>,
}

impl std::fmt::Debug for FaultStoreIo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultStoreIo")
            .field("faults", &self.faults)
            .field("stats", &self.stats)
            .finish()
    }
}

fn keep_len(len: usize, keep_per_mille: u32) -> usize {
    ((len as u64) * u64::from(keep_per_mille.min(1000)) / 1000) as usize
}

impl FaultStoreIo {
    /// An injector applying `faults` around a fresh [`RealIo`].
    pub fn new(faults: Vec<StoreFaultKind>) -> FaultStoreIo {
        FaultStoreIo {
            inner: RealIo,
            faults,
            stats: Arc::new(StoreFaultStats::default()),
            cancel_check: None,
        }
    }

    /// Handle to the shared counters; clone before boxing the injector
    /// into a store.
    pub fn stats(&self) -> Arc<StoreFaultStats> {
        Arc::clone(&self.stats)
    }

    /// Install a cancellation probe for gate-blocked operations.
    pub fn with_cancel_check(mut self, check: CancelCheck) -> FaultStoreIo {
        self.cancel_check = Some(check);
        self
    }

    /// Block while a matching [`StoreFaultKind::BlockOnGate`] holds
    /// `op`'s `index`th call. Polls the gate path (and the cancel
    /// check) every 2ms; a tripped cancel check surfaces as
    /// `ErrorKind::Interrupted`.
    fn gate(&self, op: StoreOp, index: u64) -> io::Result<()> {
        for fault in &self.faults {
            let (fop, on_op, gate) = match fault {
                StoreFaultKind::BlockOnGate { op, on_op, gate } => (*op, *on_op, gate),
                _ => continue,
            };
            if fop != op || index < on_op {
                continue;
            }
            let gate = PathBuf::from(gate);
            if !gate.exists() {
                self.stats.gated_ops.fetch_add(1, Ordering::SeqCst);
            }
            while !gate.exists() {
                if let Some(check) = &self.cancel_check {
                    if check() {
                        return Err(io::Error::new(
                            io::ErrorKind::Interrupted,
                            format!("gated {} cancelled before release", op.label()),
                        ));
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        Ok(())
    }

    /// The first non-gate fault armed for (`op`, `index`), if any.
    fn armed(&self, op: StoreOp, index: u64) -> Option<&StoreFaultKind> {
        self.faults.iter().find(|f| match f {
            StoreFaultKind::TornWrite { on_op, .. } => op == StoreOp::Write && *on_op == index,
            StoreFaultKind::ShortRead { on_op, .. } => op == StoreOp::Read && *on_op == index,
            StoreFaultKind::RenameFail { on_op } => op == StoreOp::Rename && *on_op == index,
            StoreFaultKind::FsyncFail { on_op } => op == StoreOp::Sync && *on_op == index,
            StoreFaultKind::BlockOnGate { .. } => false,
        })
    }
}

impl StoreIo for FaultStoreIo {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        let index = self.stats.reads.fetch_add(1, Ordering::SeqCst) + 1;
        self.gate(StoreOp::Read, index)?;
        let content = self.inner.read_to_string(path)?;
        if let Some(StoreFaultKind::ShortRead { keep_per_mille, .. }) =
            self.armed(StoreOp::Read, index)
        {
            self.stats.short_reads.fetch_add(1, Ordering::SeqCst);
            let keep = keep_len(content.len(), *keep_per_mille);
            let mut short = content;
            // Truncate on a char boundary so the result is still UTF-8.
            let mut cut = keep;
            while cut > 0 && !short.is_char_boundary(cut) {
                cut -= 1;
            }
            short.truncate(cut);
            return Ok(short);
        }
        Ok(content)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let index = self.stats.writes.fetch_add(1, Ordering::SeqCst) + 1;
        self.gate(StoreOp::Write, index)?;
        if let Some(StoreFaultKind::TornWrite { keep_per_mille, .. }) =
            self.armed(StoreOp::Write, index)
        {
            self.stats.torn_writes.fetch_add(1, Ordering::SeqCst);
            let keep = keep_len(bytes.len(), *keep_per_mille);
            self.inner.write(path, &bytes[..keep])?;
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                format!("injected torn write: {keep}/{} bytes persisted", bytes.len()),
            ));
        }
        self.inner.write(path, bytes)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        let index = self.stats.syncs.fetch_add(1, Ordering::SeqCst) + 1;
        self.gate(StoreOp::Sync, index)?;
        if self.armed(StoreOp::Sync, index).is_some() {
            self.stats.failed_syncs.fetch_add(1, Ordering::SeqCst);
            return Err(io::Error::other("injected fsync failure"));
        }
        self.inner.sync_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let index = self.stats.syncs.fetch_add(1, Ordering::SeqCst) + 1;
        self.gate(StoreOp::Sync, index)?;
        if self.armed(StoreOp::Sync, index).is_some() {
            self.stats.failed_syncs.fetch_add(1, Ordering::SeqCst);
            return Err(io::Error::other("injected directory fsync failure"));
        }
        self.inner.sync_dir(dir)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let index = self.stats.renames.fetch_add(1, Ordering::SeqCst) + 1;
        self.gate(StoreOp::Rename, index)?;
        if self.armed(StoreOp::Rename, index).is_some() {
            self.stats.failed_renames.fetch_add(1, Ordering::SeqCst);
            return Err(io::Error::other("injected rename failure"));
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list_dir(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pas2p-faultio-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn torn_write_persists_a_prefix_and_errors() {
        let dir = tmp_dir("torn");
        let io = FaultStoreIo::new(vec![StoreFaultKind::TornWrite {
            on_op: 2,
            keep_per_mille: 500,
        }]);
        let stats = io.stats();
        let a = dir.join("a");
        let b = dir.join("b");
        io.write(&a, b"0123456789").expect("first write clean");
        let err = io.write(&b, b"0123456789").expect_err("second write tears");
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert_eq!(std::fs::read_to_string(&b).expect("prefix"), "01234");
        assert_eq!(stats.torn_writes.load(Ordering::SeqCst), 1);
        assert_eq!(stats.writes.load(Ordering::SeqCst), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_read_returns_ok_with_truncated_content() {
        let dir = tmp_dir("short");
        let io = FaultStoreIo::new(vec![StoreFaultKind::ShortRead {
            on_op: 1,
            keep_per_mille: 300,
        }]);
        let p = dir.join("p");
        io.write(&p, b"0123456789").expect("write");
        assert_eq!(io.read_to_string(&p).expect("short but Ok"), "012");
        assert_eq!(io.read_to_string(&p).expect("second read clean"), "0123456789");
        assert_eq!(io.stats().short_reads.load(Ordering::SeqCst), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rename_and_fsync_faults_fire_on_their_index_only() {
        let dir = tmp_dir("mv");
        let io = FaultStoreIo::new(vec![
            StoreFaultKind::RenameFail { on_op: 1 },
            StoreFaultKind::FsyncFail { on_op: 2 },
        ]);
        let a = dir.join("a");
        io.write(&a, b"x").expect("write");
        assert!(io.rename(&a, &dir.join("b")).is_err(), "first rename fails");
        io.rename(&a, &dir.join("b")).expect("second rename clean");
        io.sync_file(&dir.join("b")).expect("first sync clean");
        assert!(io.sync_dir(&dir).is_err(), "second sync fails");
        assert_eq!(io.stats().faults_fired(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gated_op_blocks_until_gate_file_exists() {
        let dir = tmp_dir("gate");
        let gate = dir.join("open-sesame");
        let io = FaultStoreIo::new(vec![StoreFaultKind::BlockOnGate {
            op: StoreOp::Write,
            on_op: 1,
            gate: gate.to_string_lossy().into_owned(),
        }]);
        let stats = io.stats();
        let target = dir.join("t");
        std::thread::scope(|scope| {
            let io = &io;
            let target = &target;
            scope.spawn(move || {
                io.write(target, b"released").expect("write after release");
            });
            while stats.gated_ops.load(Ordering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
            assert!(!target.exists(), "write held by gate");
            std::fs::write(&gate, b"").expect("open gate");
        });
        assert_eq!(std::fs::read_to_string(&target).expect("read"), "released");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gated_op_cancel_check_aborts_with_interrupted() {
        let dir = tmp_dir("gate-cancel");
        let gate = dir.join("never-opened");
        let io = FaultStoreIo::new(vec![StoreFaultKind::BlockOnGate {
            op: StoreOp::Read,
            on_op: 1,
            gate: gate.to_string_lossy().into_owned(),
        }])
        .with_cancel_check(Box::new(|| true));
        let err = io
            .read_to_string(&dir.join("missing"))
            .expect_err("cancel check trips");
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
