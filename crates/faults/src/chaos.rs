//! Seeded connection-chaos plans for the prediction service.
//!
//! A chaos plan assigns each of K concurrent clients a *behavior* — a
//! clean request, a mid-request disconnect, a slow-loris drip, or a
//! garbage frame — derived deterministically from a seed, mirroring how
//! [`crate::fault_matrix`] seeds trace faults. The plan itself is pure
//! data: this crate cannot depend on `pas2p-core` (the dependency runs
//! the other way), so the soak test interprets each behavior against a
//! live socket while the plan stays reproducible and serializable.
//!
//! The service contract under chaos is the issue's acceptance bar: a
//! misbehaving client may get its own connection dropped or an `invalid`
//! response, but it must never wedge a worker, starve other clients, or
//! tear the store.

use serde::{Deserialize, Serialize};

use crate::SplitMix64;

/// How one chaos client behaves on its connection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosBehavior {
    /// A well-behaved client: send the request line, read the response.
    Clean,
    /// Send only the first `after_bytes` bytes of the request, then
    /// close the socket — a client killed mid-request.
    Disconnect {
        /// Bytes of the request written before the hangup.
        after_bytes: usize,
    },
    /// Send the request `chunk` bytes at a time with `delay_ms` pauses —
    /// a slow-loris client that must not hold a worker hostage.
    SlowLoris {
        /// Bytes per drip.
        chunk: usize,
        /// Pause between drips, in milliseconds.
        delay_ms: u64,
    },
    /// Send a frame that is not a request at all; the service must
    /// answer with a classified `invalid` error, not die.
    Garbage {
        /// The garbage line (newline appended by the client).
        line: String,
    },
}

impl ChaosBehavior {
    /// Short stable label for logs and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosBehavior::Clean => "clean",
            ChaosBehavior::Disconnect { .. } => "disconnect",
            ChaosBehavior::SlowLoris { .. } => "slow-loris",
            ChaosBehavior::Garbage { .. } => "garbage",
        }
    }
}

/// A seeded assignment of behaviors to `clients.len()` concurrent
/// clients. Same seed + same client count = same plan, always.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Seed every choice derives from.
    pub seed: u64,
    /// Behavior of client `i`, in spawn order.
    pub clients: Vec<ChaosBehavior>,
}

impl ChaosPlan {
    /// Deterministic one-line description, e.g.
    /// `seed=7 clean disconnect garbage clean`.
    pub fn describe(&self) -> String {
        let mut s = format!("seed={}", self.seed);
        for c in &self.clients {
            s.push(' ');
            s.push_str(c.label());
        }
        s
    }

    /// Count of clients with each behavior: `(clean, disconnect,
    /// slow_loris, garbage)`.
    pub fn census(&self) -> (usize, usize, usize, usize) {
        let mut census = (0, 0, 0, 0);
        for c in &self.clients {
            match c {
                ChaosBehavior::Clean => census.0 += 1,
                ChaosBehavior::Disconnect { .. } => census.1 += 1,
                ChaosBehavior::SlowLoris { .. } => census.2 += 1,
                ChaosBehavior::Garbage { .. } => census.3 += 1,
            }
        }
        census
    }
}

/// Build the plan for `clients` concurrent chaos clients from `seed`.
///
/// At least half the clients are clean (the soak needs enough real
/// traffic to assert warm-vs-cold byte identity); the rest cycle
/// through the three misbehaviors with seeded parameters. Slow-loris
/// delays are kept small (≤ 20ms per drip) so a CI soak stays bounded.
pub fn chaos_plan(seed: u64, clients: usize) -> ChaosPlan {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(clients);
    for i in 0..clients {
        // Even slots stay clean; odd slots misbehave in seeded order.
        if i % 2 == 0 {
            out.push(ChaosBehavior::Clean);
            continue;
        }
        let behavior = match rng.below(3) {
            0 => ChaosBehavior::Disconnect {
                // Cut inside the frame: after the opening brace but
                // before any plausible frame end.
                after_bytes: 1 + rng.below(24) as usize,
            },
            1 => ChaosBehavior::SlowLoris {
                chunk: 1 + rng.below(4) as usize,
                delay_ms: 5 + rng.below(16),
            },
            _ => ChaosBehavior::Garbage {
                line: match rng.below(3) {
                    0 => "this is not json".to_string(),
                    1 => "{\"op\":\"predict\"".to_string(), // unterminated
                    _ => format!("{{\"op\":\"warp-core-breach\",\"n\":{}}}", rng.below(999)),
                },
            },
        };
        out.push(behavior);
    }
    ChaosPlan { seed, clients: out }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        let a = chaos_plan(42, 8);
        let b = chaos_plan(42, 8);
        let c = chaos_plan(43, 8);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, c, "different seed, different plan");
        assert_eq!(a.clients.len(), 8);
    }

    #[test]
    fn at_least_half_the_clients_are_clean() {
        for seed in [0, 1, 7, 42, 1234] {
            let plan = chaos_plan(seed, 10);
            let (clean, ..) = plan.census();
            assert!(clean >= 5, "seed {seed}: {}", plan.describe());
        }
    }

    #[test]
    fn describe_names_every_behavior() {
        let plan = ChaosPlan {
            seed: 9,
            clients: vec![
                ChaosBehavior::Clean,
                ChaosBehavior::Disconnect { after_bytes: 3 },
                ChaosBehavior::SlowLoris { chunk: 1, delay_ms: 5 },
                ChaosBehavior::Garbage { line: "x".into() },
            ],
        };
        assert_eq!(plan.describe(), "seed=9 clean disconnect slow-loris garbage");
        assert_eq!(plan.census(), (1, 1, 1, 1));
    }
}
